"""Flight recorder: causal event journal, checkpoints, replay.

The recorder is the record half of record-and-replay debugging for the
simulator. Behind the same zero-cost module flag as the tracer it
journals every **causally identified** event — a WQE post/fetch/execute
(queue name + monotonic WR index + slot bytes), a doorbell, a WAIT
wakeup, an ENABLE, a CQE (CQ + monotonic count), an atomic apply, a
store into annotated ring memory — into a bounded ring buffer, with a
periodic **checkpoint** of all sim-visible state (DRAM region digests,
queue producer/consumer counters, prefetch-cache keys, CQ counts).
Journals dump to compact JSONL, one record per line, all integers and
hex strings, ``sort_keys`` throughout — two identical runs produce
byte-identical journals.

**Deterministic replay** (:func:`replay_journal`) re-executes the
scenario from scratch — the simulator is deterministic, so a rebuild
*is* the re-seed — and verifies journal identity event by event as it
goes. Each checkpoint in the journal acts as a verified synchronization
barrier: the replay's captured state must match the recorded state
digest-for-digest. When the journal's ring evicted its oldest entries,
verification silently fast-forwards to the first retained record — the
"replay from the nearest checkpoint" discipline — and the journal
*suffix* must reproduce byte-identically. A ``to_event`` pattern stops
recording exactly when a matching record is emitted, landing the replay
on a requested event (e.g. a specific queue's fetch at a specific
wqe_count).

Online **invariant monitors** run over every emitted record (also
usable standalone over synthetic records via
:class:`InvariantMonitor`): per-queue WR-index monotonicity, CQE
conservation against signaled completions, DMA byte conservation for
WRITE/READ, and WAIT-threshold consistency. Violations surface both on
``FlightRecorder.violations`` and through the MetricsRegistry
(``obs.invariants`` counter: ``checks`` plus ``violation:<name>``).

Like the tracer, the recorder never schedules simulation events and
never mutates simulated state — attaching it cannot change a run's
schedule (``tests/test_obs_determinism.py`` holds it to that).
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..nic.opcodes import OPCODE_NAMES, Opcode
from . import _activate, _deactivate

__all__ = [
    "JOURNAL_SCHEMA",
    "FlightRecorder",
    "InvariantMonitor",
    "Journal",
    "JournalError",
    "JournalCorruptError",
    "JournalTruncatedError",
    "ReplayDivergence",
    "ReplayResult",
    "load_journal",
    "replay_journal",
    "export_merged_journal",
]

JOURNAL_SCHEMA = 1


class JournalError(Exception):
    """Base for journal parse/replay failures."""


class JournalTruncatedError(JournalError):
    """The journal ends before it even establishes itself (no meta)."""


class JournalCorruptError(JournalError):
    """A journal line is not valid JSON or the seq chain has holes."""


class ReplayDivergence(JournalError):
    """A replayed event does not match the recorded journal."""

    def __init__(self, message: str, seq: Optional[int] = None,
                 expected: Optional[Dict] = None,
                 actual: Optional[Dict] = None):
        super().__init__(message)
        self.seq = seq
        self.expected = expected
        self.actual = actual


def _op_name(opcode: int) -> str:
    return OPCODE_NAMES.get(opcode, f"OP{opcode:#x}")


def _digest(data) -> str:
    """Compact (64-bit) content digest used for checkpoint state."""
    return hashlib.sha256(bytes(data)).hexdigest()[:16]


def record_matches(record: Dict[str, Any],
                   pattern: Dict[str, Any]) -> bool:
    """True when every pattern field equals the record's field."""
    return all(record.get(key) == value
               for key, value in pattern.items())


# -- invariant monitors ---------------------------------------------------


class InvariantMonitor:
    """Online invariants over the journal record stream.

    Operates purely on record dicts, so it can be replayed over a
    loaded journal as easily as it runs inline during recording:

    * ``wqe_count_monotonic`` — each queue's fetched WR indices advance
      by exactly one (the ConnectX monotonic-counter discipline that WQ
      recycling leans on, §3.4), and WAIT thresholds per queue never
      decrease.
    * ``cqe_conservation`` — each CQ's monotonic count bumps by exactly
      one per CQE, and a driven send queue never completes more OK WRs
      than its signaled ``done``/WAIT/ENABLE records justify.
    * ``dma_bytes`` — a completed OK WRITE moves exactly the byte count
      its WQE declared at execute time; a READ never scatters more.
    * ``wait_threshold`` — a WAIT only ever wakes with the target CQ's
      count at or above its threshold.
    """

    def __init__(self, metrics=None):
        self.violations: List[Dict[str, Any]] = []
        self._counter = (metrics.counter("obs.invariants")
                         if metrics is not None else None)
        self._last_fetch_wr: Dict[Tuple, int] = {}
        self._last_wait_threshold: Dict[Tuple, int] = {}
        self._cq_counts: Dict[Tuple, int] = {}
        self._justified: Dict[Tuple, int] = {}
        self._ok_cqes: Dict[Tuple, int] = {}
        self._driven: set = set()
        self._exec_len: Dict[Tuple, Tuple[str, int]] = {}

    def _violate(self, name: str, record: Dict[str, Any],
                 detail: str) -> None:
        self.violations.append({"name": name,
                                "seq": record.get("seq"),
                                "ts": record.get("ts"),
                                "detail": detail})
        if self._counter is not None:
            self._counter[f"violation:{name}"] += 1

    def observe(self, record: Dict[str, Any]) -> None:
        if self._counter is not None:
            self._counter["checks"] += 1
        kind = record["kind"]
        # All state is scoped by bed so the monitor runs unmodified
        # over merged multi-testbed journals (same-named queues exist
        # in every bed).
        bed = record.get("bed", 0)
        if kind == "fetch":
            wq = record["wq"]
            self._driven.add((bed, record.get("wq_num")))
            prev = self._last_fetch_wr.get((bed, wq))
            if prev is not None and record["wr"] != prev + 1:
                self._violate(
                    "wqe_count_monotonic", record,
                    f"wq {wq} fetched wr {record['wr']} after {prev}")
            self._last_fetch_wr[(bed, wq)] = record["wr"]
        elif kind == "exec":
            self._exec_len[(bed, record["wq"], record["wr"])] = (
                record["op"], record.get("len", 0))
        elif kind == "wait":
            if record["count"] < record["threshold"]:
                self._violate(
                    "wait_threshold", record,
                    f"WAIT on cq{record['cq']} woke at count "
                    f"{record['count']} < threshold {record['threshold']}")
            wq = record["wq"]
            # Per (wq, target cq): one control queue WAITs on several
            # CQs with independent threshold ladders, but against any
            # single monotonic CQ counter thresholds never regress.
            threshold_key = (bed, wq, record["cq"])
            prev = self._last_wait_threshold.get(threshold_key)
            if prev is not None and record["threshold"] < prev:
                self._violate(
                    "wqe_count_monotonic", record,
                    f"wq {wq} WAIT threshold {record['threshold']} on "
                    f"cq{record['cq']} regressed below {prev}")
            self._last_wait_threshold[threshold_key] = record["threshold"]
            self._exec_len.pop((bed, wq, record["wr"]), None)
            if record.get("signaled"):
                key = (bed, record.get("wq_num"))
                self._justified[key] = self._justified.get(key, 0) + 1
        elif kind == "enable":
            self._exec_len.pop((bed, record["wq"], record["wr"]), None)
            if record.get("signaled"):
                key = (bed, record.get("wq_num"))
                self._justified[key] = self._justified.get(key, 0) + 1
        elif kind == "done":
            expected = self._exec_len.pop(
                (bed, record["wq"], record["wr"]), None)
            if (expected is not None and record["status"] == "OK"
                    and expected[0] in ("WRITE", "WRITE_IMM", "READ")):
                op, length = expected
                moved = record.get("len", 0)
                bad = (moved != length if op != "READ"
                       else moved > length)
                if bad:
                    self._violate(
                        "dma_bytes", record,
                        f"{op} on wq {record['wq']} wr {record['wr']} "
                        f"moved {moved} bytes, WQE declared {length}")
            if record.get("signaled") or record["status"] != "OK":
                key = (bed, record.get("wq_num"))
                self._justified[key] = self._justified.get(key, 0) + 1
        elif kind == "cqe":
            cq = record["cq"]
            prev = self._cq_counts.get((bed, cq))
            if prev is not None and record["count"] != prev + 1:
                self._violate(
                    "cqe_conservation", record,
                    f"cq {cq} count jumped {prev} -> {record['count']}")
            self._cq_counts[(bed, cq)] = record["count"]
            key = (bed, record.get("wq_num"))
            if key in self._driven and record.get("status") == "OK":
                seen = self._ok_cqes.get(key, 0) + 1
                self._ok_cqes[key] = seen
                if seen > self._justified.get(key, 0):
                    self._violate(
                        "cqe_conservation", record,
                        f"wq_num {key[1]} delivered OK CQE #{seen} with "
                        f"only {self._justified.get(key, 0)} signaled "
                        f"completions justified")


# -- the recorder ---------------------------------------------------------


class FlightRecorder:
    """Bounded causal journal of one simulation; one per Simulator."""

    def __init__(self, sim, name: str = "journal",
                 capacity: int = 1 << 16,
                 checkpoint_interval: int = 1024,
                 verify: Optional["Journal"] = None,
                 stop_at: Optional[Dict[str, Any]] = None,
                 monitor: bool = True):
        if getattr(sim, "recorder", None) is not None:
            raise ValueError(f"{sim!r} already has a recorder attached")
        if capacity < 1:
            raise ValueError(f"capacity {capacity} < 1")
        if checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval {checkpoint_interval} < 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.checkpoint_interval = checkpoint_interval
        #: Next sequence number; seq - len(records) entries were evicted.
        self.seq = 0
        self.records: deque = deque(maxlen=capacity)
        self.checkpoints: deque = deque(
            maxlen=max(2, capacity // checkpoint_interval + 2))
        self.monitor = InvariantMonitor(sim.metrics) if monitor else None
        # Replay-verification state.
        self._verify = verify
        self.verified = 0
        self.divergence: Optional[ReplayDivergence] = None
        self._verify_done = verify is None
        # Replay-to-event state.
        self.stop_at = stop_at
        self.landed: Optional[Dict[str, Any]] = None
        self.stopped = False
        # Attachment bookkeeping.
        self._nics: List = []
        self._nics_seen: set = set()
        self._memories: List[Tuple[Any, Callable]] = []
        # Annotated regions per memory: sorted [(start, end, label)].
        self._regions: Dict[int, List[Tuple[int, int, str]]] = {}
        sim.recorder = self
        _activate()

    def __repr__(self) -> str:
        return (f"<FlightRecorder {self.name} seq={self.seq} "
                f"retained={len(self.records)}>")

    @property
    def evicted(self) -> int:
        """Records pushed out of the ring by newer ones."""
        return self.seq - len(self.records)

    @property
    def violations(self) -> List[Dict[str, Any]]:
        return self.monitor.violations if self.monitor else []

    def close(self) -> None:
        """Detach from the simulator and its memories."""
        if getattr(self.sim, "recorder", None) is self:
            self.sim.recorder = None
            for memory, hook in self._memories:
                memory.remove_store_hook(hook)
            self._memories.clear()
            _deactivate()

    # -- attachment --------------------------------------------------------

    def attach_nic(self, nic) -> None:
        """Cover a NIC: journal its ring stores, checkpoint its queues.

        Queues the NIC creates later are picked up automatically via
        the ``wq_created``/``cq_created`` factory hooks.
        """
        if id(nic) in self._nics_seen:
            return
        self._nics_seen.add(id(nic))
        self._nics.append(nic)
        self.attach_memory(nic.memory)
        for wq in nic.wqs.values():
            self.annotate_region(nic.memory, wq.ring.addr, wq.ring.size,
                                 f"ring:{wq.name}")

    def attach_memory(self, memory) -> None:
        """Install the DRAM store hook (stores into annotated regions)."""
        if id(memory) in self._regions:
            return
        self._regions[id(memory)] = []

        def hook(addr: int, length: int, _memory=memory) -> None:
            self._dram_store(_memory, addr, length)

        memory.add_store_hook(hook)
        self._memories.append((memory, hook))

    def annotate_region(self, memory, addr: int, size: int,
                        label: str) -> None:
        """Mark [addr, addr+size) as causal: stores get journaled and
        the region's digest joins every checkpoint."""
        self.attach_memory(memory)
        regions = self._regions[id(memory)]
        for start, end, _ in regions:
            if start == addr and end == addr + size:
                return
        regions.append((addr, addr + size, label))
        regions.sort()

    # -- NIC object lifecycle (called by RNIC factories) --------------------

    def wq_created(self, nic, wq) -> None:
        self.attach_nic(nic)
        self.annotate_region(nic.memory, wq.ring.addr, wq.ring.size,
                             f"ring:{wq.name}")

    def cq_created(self, nic, cq) -> None:
        self.attach_nic(nic)

    # -- hook methods (called from instrumented NIC code) -------------------

    def on_post(self, wq, wr_index: int, slot_cursor: int, slots: int,
                wqe) -> None:
        if self.stopped:
            return
        gens, data = wq.slot_state(slot_cursor, slots)
        self._emit({"kind": "post", "wq": wq.name,
                    "wq_num": wq.wq_num, "wr": wr_index,
                    "slot": slot_cursor % wq.num_slots, "slots": slots,
                    "addr": wq.slot_addr(slot_cursor),
                    "op": _op_name(wqe.opcode), "wqe": data.hex(),
                    "gens": list(gens)})

    def on_doorbell(self, wq, up_to: int) -> None:
        if self.stopped:
            return
        self._emit({"kind": "doorbell", "wq": wq.name,
                    "wq_num": wq.wq_num, "up_to": up_to})

    def on_fetch(self, wq, wr_index: int, slot_cursor: int, slots: int,
                 wqe, cache_hit: bool) -> None:
        if self.stopped:
            return
        gens, data = wq.slot_state(slot_cursor, slots)
        self._emit({"kind": "fetch", "wq": wq.name,
                    "wq_num": wq.wq_num, "wr": wr_index,
                    "slot": slot_cursor % wq.num_slots, "slots": slots,
                    "addr": wq.slot_addr(slot_cursor),
                    "op": _op_name(wqe.opcode), "wqe": data.hex(),
                    "gens": list(gens), "cache": bool(cache_hit)})

    def on_exec(self, wq, wr_index: int, wqe) -> None:
        if self.stopped:
            return
        self._emit({"kind": "exec", "wq": wq.name,
                    "wq_num": wq.wq_num, "wr": wr_index,
                    "op": _op_name(wqe.opcode), "len": wqe.length})

    def on_wait(self, wq, wr_index: int, wqe, cq) -> None:
        if self.stopped:
            return
        self._emit({"kind": "wait", "wq": wq.name,
                    "wq_num": wq.wq_num, "wr": wr_index,
                    "cq": wqe.target, "threshold": wqe.wqe_count,
                    "count": cq.count,
                    "signaled": bool(wqe.signaled)})

    def on_enable(self, wq, wr_index: int, wqe, relative: bool,
                  target) -> None:
        if self.stopped:
            return
        self._emit({"kind": "enable", "wq": wq.name,
                    "wq_num": wq.wq_num, "wr": wr_index,
                    "target": wqe.target, "count": wqe.wqe_count,
                    "relative": bool(relative),
                    "target_name": target.name if target else None,
                    "signaled": bool(wqe.signaled)})

    def on_done(self, wq, wr_index: int, wqe, status: str,
                byte_len: int) -> None:
        if self.stopped:
            return
        self._emit({"kind": "done", "wq": wq.name,
                    "wq_num": wq.wq_num, "wr": wr_index,
                    "op": _op_name(wqe.opcode), "status": status,
                    "len": byte_len, "signaled": bool(wqe.signaled)})

    def on_cqe(self, cq, cqe) -> None:
        if self.stopped:
            return
        self._emit({"kind": "cqe", "cq": cq.name, "cq_num": cq.cq_num,
                    "count": cq.count, "op": _op_name(cqe.opcode),
                    "wr_id": cqe.wr_id, "status": cqe.status,
                    "wq_num": cqe.wq_num})

    def on_atomic(self, nic, src_wq_name: str, wqe,
                  original: int) -> None:
        if self.stopped:
            return
        record = {"kind": "atomic", "nic": nic.name,
                  "src": src_wq_name, "op": _op_name(wqe.opcode),
                  "raddr": wqe.raddr, "op0": wqe.operand0,
                  "op1": wqe.operand1, "orig": original}
        if wqe.opcode == Opcode.CAS:
            record["swapped"] = original == wqe.operand0
        self._emit(record)

    def _dram_store(self, memory, addr: int, length: int) -> None:
        if self.stopped:
            return
        regions = self._regions.get(id(memory))
        if not regions:
            return
        end = addr + length
        for start, stop, label in regions:
            if start >= end:
                break
            if stop > addr:
                self._emit({"kind": "store", "mem": memory.name,
                            "region": label, "addr": addr,
                            "len": length,
                            "digest": _digest(
                                memory.view(addr, length))})
                return

    # -- emission core -----------------------------------------------------

    def _emit(self, record: Dict[str, Any]) -> None:
        record["seq"] = self.seq
        record["ts"] = self.sim.now
        if self.monitor is not None:
            self.monitor.observe(record)
        self.records.append(record)
        self.seq += 1
        if not self._verify_done:
            self._verify_record(record)
        if self.seq % self.checkpoint_interval == 0:
            self._checkpoint()
        if (self.stop_at is not None and self.landed is None
                and record_matches(record, self.stop_at)):
            self.landed = record
            self.stopped = True

    def capture_state(self) -> Dict[str, Any]:
        """Sim-visible state of everything attached, all digested.

        Deterministic and JSON-stable: digests of annotated DRAM
        regions, per-queue monotonic counters + cursors + ring bytes +
        write generations + decode-cache keys (the prefetch-cache
        state) + PU binding, per-CQ completion counts.
        """
        state: Dict[str, Any] = {"mem": {}, "wq": {}, "cq": {}}
        for memory, _hook in self._memories:
            regions = self._regions.get(id(memory), [])
            state["mem"][memory.name] = {
                label: _digest(memory.view(start, end - start))
                for start, end, label in regions}
        for nic in self._nics:
            for wq in nic.wqs.values():
                state["wq"][f"{nic.name}/{wq.name}"] = {
                    "posted": wq.posted_count,
                    "enabled": wq.enabled_count,
                    "fetched": wq.fetched_count,
                    "post_cursor": wq._post_slot_cursor,
                    "fetch_cursor": wq._fetch_slot_cursor,
                    "ring": _digest(
                        wq.memory.view(wq.ring.addr, wq.ring.size)),
                    "gens": _digest(
                        ",".join(map(str, wq._ring_gens.gens)).encode()),
                    "cache": sorted(wq._decode_cache.keys()),
                    "pu": wq.pu_index,
                }
            for cq in nic.cqs.values():
                state["cq"][f"{nic.name}/{cq.name}"] = cq.count
        return state

    def _checkpoint(self) -> None:
        checkpoint = {"kind": "checkpoint", "seq": self.seq,
                      "ts": self.sim.now, "state": self.capture_state()}
        self.checkpoints.append(checkpoint)
        if not self._verify_done:
            self._verify_checkpoint(checkpoint)

    # -- replay verification -----------------------------------------------

    def _diverge(self, message: str, seq: int,
                 expected: Optional[Dict], actual: Optional[Dict]) -> None:
        self.divergence = ReplayDivergence(message, seq=seq,
                                           expected=expected,
                                           actual=actual)
        self._verify_done = True

    def _verify_record(self, record: Dict[str, Any]) -> None:
        journal = self._verify
        seq = record["seq"]
        if seq < journal.first_seq:
            return  # before the ring's retained suffix
        expected = journal.record_at(seq)
        if expected is None:
            self._diverge(
                f"replay emitted event past journal end at seq {seq}",
                seq, None, record)
            return
        if expected != record:
            fields = sorted(
                set(expected) | set(record),
                key=lambda k: (k != "kind", k))
            differing = [key for key in fields
                         if expected.get(key) != record.get(key)]
            self._diverge(
                f"replay diverged at seq {seq}: "
                f"field(s) {', '.join(differing)} differ",
                seq, expected, record)
            return
        self.verified += 1

    def _verify_checkpoint(self, checkpoint: Dict[str, Any]) -> None:
        expected = self._verify.checkpoint_at(checkpoint["seq"])
        if expected is None:
            return
        if expected["state"] != checkpoint["state"]:
            self._diverge(
                f"checkpoint state diverged at seq {checkpoint['seq']}",
                checkpoint["seq"], expected, checkpoint)

    # -- export ------------------------------------------------------------

    def meta(self) -> Dict[str, Any]:
        return {"kind": "meta", "schema": JOURNAL_SCHEMA,
                "name": self.name, "capacity": self.capacity,
                "interval": self.checkpoint_interval,
                "first_seq": self.evicted, "next_seq": self.seq}

    def journal_lines(self, extra: Optional[Dict[str, Any]] = None) \
            -> List[str]:
        """The JSONL dump: meta first, then checkpoints interleaved
        with retained records by seq."""
        meta = self.meta()
        if extra:
            meta.update(extra)
        lines = [json.dumps(meta, sort_keys=True,
                            separators=(",", ":"))]
        first = self.evicted
        checkpoints = [dict(cp, **extra) if extra else cp
                       for cp in self.checkpoints if cp["seq"] >= first]
        index = 0
        for record in self.records:
            while (index < len(checkpoints)
                   and checkpoints[index]["seq"] <= record["seq"]):
                lines.append(json.dumps(checkpoints[index],
                                        sort_keys=True,
                                        separators=(",", ":")))
                index += 1
            out = dict(record, **extra) if extra else record
            lines.append(json.dumps(out, sort_keys=True,
                                    separators=(",", ":")))
        for checkpoint in checkpoints[index:]:
            lines.append(json.dumps(checkpoint, sort_keys=True,
                                    separators=(",", ":")))
        return lines

    def to_jsonl(self) -> str:
        return "\n".join(self.journal_lines()) + "\n"

    def dump(self, path) -> int:
        """Write the JSONL journal; returns the retained record count."""
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return len(self.records)


def export_merged_journal(recorders, path) -> int:
    """Merge several recorders (e.g. one per benchmark testbed) into
    one JSONL file; every line is stamped with its ``bed`` index."""
    lines: List[str] = []
    for index, recorder in enumerate(recorders):
        lines.extend(recorder.journal_lines(extra={"bed": index}))
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    return sum(len(recorder.records) for recorder in recorders)


# -- journal loading ------------------------------------------------------


class Journal:
    """A parsed journal: meta, retained records, checkpoints.

    Multi-bed merged journals carry a ``bed`` field on every line; the
    per-seq accessors then only apply to single-bed journals (the
    trace-diff engine aligns multi-bed journals by causal key instead).
    """

    def __init__(self, meta: Dict[str, Any],
                 records: List[Dict[str, Any]],
                 checkpoints: List[Dict[str, Any]],
                 metas: Optional[List[Dict[str, Any]]] = None):
        self.meta = meta
        self.records = records
        self.checkpoints = checkpoints
        self.metas = metas or [meta]

    def __repr__(self) -> str:
        return (f"<Journal {self.meta.get('name', '?')} "
                f"records={len(self.records)}>")

    @property
    def multi_bed(self) -> bool:
        return len(self.metas) > 1

    @property
    def first_seq(self) -> int:
        if self.records:
            return self.records[0]["seq"]
        return self.meta.get("first_seq", 0)

    def record_at(self, seq: int) -> Optional[Dict[str, Any]]:
        if self.multi_bed:
            raise JournalError(
                "record_at is ambiguous on a multi-bed journal")
        index = seq - self.first_seq
        if 0 <= index < len(self.records):
            return self.records[index]
        return None

    def checkpoint_at(self, seq: int) -> Optional[Dict[str, Any]]:
        for checkpoint in self.checkpoints:
            if checkpoint["seq"] == seq:
                return checkpoint
        return None

    def find(self, pattern: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """First record matching every field of ``pattern``."""
        for record in self.records:
            if record_matches(record, pattern):
                return record
        return None

    def nearest_checkpoint(self, seq: int) -> Optional[Dict[str, Any]]:
        """The latest checkpoint at or before ``seq``."""
        best = None
        for checkpoint in self.checkpoints:
            if checkpoint["seq"] <= seq:
                if best is None or checkpoint["seq"] > best["seq"]:
                    best = checkpoint
        return best


def _journal_lines(source) -> List[str]:
    if hasattr(source, "read"):
        text = source.read()
    elif isinstance(source, (list, tuple)):
        return list(source)
    else:
        text = str(source)
        if "\n" not in text:
            with open(text) as handle:
                text = handle.read()
    return text.splitlines()


def load_journal(source) -> Journal:
    """Parse a JSONL journal from a path, text, file object or lines.

    Raises :class:`JournalTruncatedError` when the journal is empty or
    carries no meta line, :class:`JournalCorruptError` on malformed
    JSON, unknown schema, or holes in a bed's seq chain.
    """
    lines = [line for line in _journal_lines(source) if line.strip()]
    if not lines:
        raise JournalTruncatedError("journal is empty")
    metas: List[Dict[str, Any]] = []
    records: List[Dict[str, Any]] = []
    checkpoints: List[Dict[str, Any]] = []
    for number, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise JournalCorruptError(
                f"line {number} is not valid JSON: {exc}") from None
        if not isinstance(record, dict) or "kind" not in record:
            raise JournalCorruptError(
                f"line {number} is not a journal record")
        kind = record["kind"]
        if kind == "meta":
            if record.get("schema") != JOURNAL_SCHEMA:
                raise JournalCorruptError(
                    f"line {number}: unsupported journal schema "
                    f"{record.get('schema')!r}")
            metas.append(record)
        elif kind == "checkpoint":
            checkpoints.append(record)
        else:
            records.append(record)
    if not metas:
        raise JournalTruncatedError(
            "journal carries no meta line (truncated?)")
    previous: Dict[Any, int] = {}
    for record in records:
        bed = record.get("bed", 0)
        seq = record.get("seq")
        if not isinstance(seq, int):
            raise JournalCorruptError(f"record without seq: {record}")
        last = previous.get(bed)
        if last is not None and seq != last + 1:
            raise JournalCorruptError(
                f"seq chain hole: {last} -> {seq} (bed {bed})")
        previous[bed] = seq
    return Journal(metas[0], records, checkpoints, metas)


# -- deterministic replay -------------------------------------------------


class ReplayResult:
    """Outcome of :func:`replay_journal`."""

    def __init__(self, recorder: FlightRecorder, journal: Journal,
                 to_event: Optional[Dict[str, Any]]):
        self.recorder = recorder
        self.journal = journal
        self.divergence = recorder.divergence
        self.verified = recorder.verified
        self.landed = recorder.landed
        self._to_event = to_event

    @property
    def ok(self) -> bool:
        if self.divergence is not None:
            return False
        if self._to_event is not None:
            return self.landed is not None
        return self.verified == len(self.journal.records)

    def raise_on_divergence(self) -> "ReplayResult":
        if self.divergence is not None:
            raise self.divergence
        if not self.ok:
            raise ReplayDivergence(
                f"replay verified only {self.verified} of "
                f"{len(self.journal.records)} journal records "
                "(run ended early?)")
        return self

    def __repr__(self) -> str:
        return (f"<ReplayResult ok={self.ok} verified={self.verified}"
                f"{' landed' if self.landed else ''}>")


def replay_journal(journal: Journal, runner,
                   to_event: Optional[Dict[str, Any]] = None,
                   name: str = "replay") -> ReplayResult:
    """Re-execute a recorded scenario, verifying journal identity.

    ``runner(make_recorder)`` must rebuild the original scenario and
    call ``make_recorder(sim)`` on its freshly built simulator (the
    returned verify-mode :class:`FlightRecorder` can then be attached
    to NICs exactly like the recording run's was), then drive the
    scenario to completion. Because the simulator is deterministic, a
    rebuild re-seeds exactly the recorded initial state; every record
    from the journal's first retained seq on — the nearest checkpoint's
    suffix — must reproduce byte-identically, and every checkpoint's
    state must match.

    ``to_event`` stops the recording the moment a record matching the
    pattern is emitted (e.g. ``{"kind": "fetch", "wq": "ring-sq",
    "wr": 7}``); the matched record lands on ``ReplayResult.landed``.
    """
    if journal.multi_bed:
        raise JournalError("cannot replay a merged multi-bed journal; "
                           "replay each bed's journal separately")
    box: Dict[str, FlightRecorder] = {}

    def make_recorder(sim) -> FlightRecorder:
        recorder = FlightRecorder(
            sim, name=name,
            capacity=journal.meta.get("capacity", 1 << 16),
            checkpoint_interval=journal.meta.get("interval", 1024),
            verify=journal, stop_at=to_event)
        box["recorder"] = recorder
        return recorder

    runner(make_recorder)
    recorder = box.get("recorder")
    if recorder is None:
        raise JournalError("runner never called make_recorder(sim)")
    recorder.close()
    return ReplayResult(recorder, journal, to_event)
