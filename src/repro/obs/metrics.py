"""Named counters, gauges and sim-time histograms with one snapshot API.

The registry replaces the ad-hoc stats dicts that used to live on the
kernel, the RNIC and every send-queue driver. Producers register once
and keep bumping plain :class:`collections.Counter` objects (so the hot
paths pay exactly what they paid before); consumers call
:meth:`MetricsRegistry.snapshot` and get one nested, deterministic,
JSON-serializable dict covering everything.

Conventions:

* **counters** — monotonically growing event counts. Registered under a
  dotted name (``nic.server-nic.wrs``); the returned object is a plain
  ``Counter`` so existing ``stats["WRITE"] += 1`` / ``stats.get(...)``
  call sites keep working unchanged.
* **gauges** — zero-argument callables sampled at snapshot time. The
  simulation kernel registers its counters this way so the event loop
  keeps bumping bare ints.
* **histograms** — power-of-two bucketed distributions of simulated
  durations (integer nanoseconds). Cheap enough for tracing-path use:
  one ``bit_length`` and two adds per observation.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, List

__all__ = ["MetricsRegistry", "Histogram", "HistogramLayoutError",
           "parse_openmetrics", "to_openmetrics_multi"]


class HistogramLayoutError(ValueError):
    """Two histograms (or a snapshot) disagree on bucket layout.

    Merging bucket counts positionally is only sound when both sides
    use the same power-of-two layout; silently adding mismatched
    buckets would misaggregate every downstream quantile, so the
    telemetry rollups fail loudly instead.
    """


def _om_name(name: str) -> str:
    """A registry name as an OpenMetrics metric name.

    Dots (our namespacing) and anything else outside [a-zA-Z0-9_]
    become underscores; a leading digit gets prefixed.
    """
    sanitized = "".join(ch if ch.isalnum() or ch == "_" else "_"
                        for ch in name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _om_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


class Histogram:
    """Power-of-two bucketed histogram of non-negative integers (ns)."""

    __slots__ = ("name", "counts", "count", "total", "min", "max")

    def __init__(self, name: str = ""):
        self.name = name
        # Bucket b counts observations with bit_length() == b, i.e.
        # values in [2^(b-1), 2^b); bucket 0 holds exact zeros. 64
        # buckets cover every plausible simulated duration.
        self.counts: List[int] = [0] * 64
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"

    def observe(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative histogram sample {value}")
        self.counts[value.bit_length()] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram in place; returns self.

        Log-bucketed histograms merge by plain bucket-count addition,
        which makes the operation associative and commutative — the
        property the telemetry plane's cross-window / cross-bed
        aggregation relies on (``merge(a, b) == merge(b, a)``, tested).

        Raises :class:`HistogramLayoutError` when the two bucket
        layouts differ in width: positional addition would silently
        misaggregate.
        """
        if len(other.counts) != len(self.counts):
            raise HistogramLayoutError(
                f"cannot merge {len(other.counts)}-bucket histogram "
                f"{other.name!r} into {len(self.counts)}-bucket "
                f"{self.name!r}")
        counts = self.counts
        for bucket, bucket_count in enumerate(other.counts):
            if bucket_count:
                counts[bucket] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        return self

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any],
                      name: str = "") -> "Histogram":
        """Rebuild a histogram from :meth:`snapshot` output.

        Sparse ``le_<upper>`` bucket keys map back to bucket indices
        (``upper`` is ``2^b - 1``, so ``upper.bit_length()`` is ``b``).
        Telemetry window records embed snapshots; this is how they are
        re-aggregated into run- or fleet-level distributions.

        Raises :class:`HistogramLayoutError` for any bucket upper bound
        that does not belong to the power-of-two layout (not of the
        form ``2^b - 1``, negative, or beyond the 64-bucket range) —
        a snapshot from a differently-bucketed histogram must not be
        silently folded into this one.
        """
        histogram = cls(name)
        for key, bucket_count in snap.get("buckets", {}).items():
            try:
                upper = int(key[3:]) if key.startswith("le_") else int(key)
            except (TypeError, ValueError):
                raise HistogramLayoutError(
                    f"snapshot {name!r}: malformed bucket key {key!r}")
            bucket = upper.bit_length() if upper >= 0 else -1
            if (upper < 0 or bucket >= len(histogram.counts)
                    or upper != ((1 << bucket) - 1 if bucket else 0)):
                raise HistogramLayoutError(
                    f"snapshot {name!r}: bucket upper bound {upper} is "
                    f"not a 2^b-1 power-of-two-layout boundary")
            if bucket_count < 0:
                raise HistogramLayoutError(
                    f"snapshot {name!r}: negative count {bucket_count} "
                    f"in bucket {key!r}")
            histogram.counts[bucket] += bucket_count
        histogram.count = snap.get("count", 0)
        histogram.total = snap.get("sum", 0)
        histogram.min = snap.get("min")
        histogram.max = snap.get("max")
        return histogram

    def quantile(self, fraction: float) -> int:
        """Upper bound of the bucket holding the ``fraction`` quantile."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction {fraction} outside (0, 1]")
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} has no samples")
        rank = max(1, round(fraction * self.count))
        seen = 0
        for bucket, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                return (1 << bucket) - 1 if bucket else 0
        return (1 << 63) - 1  # pragma: no cover - unreachable

    def snapshot(self) -> Dict[str, Any]:
        buckets = {}
        for bucket, bucket_count in enumerate(self.counts):
            if bucket_count:
                upper = (1 << bucket) - 1 if bucket else 0
                buckets[f"le_{upper}"] = bucket_count
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class MetricsRegistry:
    """One home for every counter/gauge/histogram of a simulation."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Callable[[], Any]] = {}
        self._histograms: Dict[str, Histogram] = {}

    def __repr__(self) -> str:
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)}>")

    # -- registration ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the named counter family (a plain Counter)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a zero-argument callable sampled at snapshot time."""
        self._gauges[name] = fn

    def histogram(self, name: str) -> Histogram:
        """Get or create the named histogram."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    # -- consumption -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """One deterministic, JSON-serializable view of everything.

        Keys are sorted so that two identical runs produce identical
        serialized snapshots (the determinism tests rely on this).
        """
        return {
            "counters": {name: dict(sorted(counter.items()))
                         for name, counter in sorted(self._counters.items())},
            "gauges": {name: fn()
                       for name, fn in sorted(self._gauges.items())},
            "histograms": {name: histogram.snapshot()
                           for name, histogram
                           in sorted(self._histograms.items())},
        }

    def to_openmetrics(self, labels: Dict[str, str] = None,
                       eof: bool = True) -> str:
        """The registry in OpenMetrics/Prometheus text format.

        Counter families become one ``<name>_total`` series per key
        (the key as a ``key`` label), gauges become bare samples (only
        numeric gauge values are exported), histograms become the
        standard cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
        series using the power-of-two bucket upper bounds. Output is
        deterministic (sorted) and ends with the ``# EOF`` marker.

        ``labels`` adds constant label pairs (e.g. ``{"bed":
        "server-0"}``) to every sample, which is how multi-bed
        snapshots share one export without colliding on metric name;
        ``eof=False`` omits the trailing marker so several labeled
        registries can be concatenated (see
        :func:`to_openmetrics_multi`).
        """
        pairs = ["%s=\"%s\"" % (_om_name(key), _om_label(str(value)))
                 for key, value in sorted((labels or {}).items())]
        extra = "{" + ",".join(pairs) + "}" if pairs else ""

        def labeled(inner: str) -> str:
            return "{" + ",".join(pairs + [inner]) + "}"

        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            metric = _om_name(name)
            lines.append(f"# TYPE {metric} counter")
            for key, value in sorted(counter.items()):
                series = labeled("key=\"%s\"" % _om_label(str(key)))
                lines.append(f"{metric}_total{series} {value}")
        for name, fn in sorted(self._gauges.items()):
            value = fn()
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue
            metric = _om_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric}{extra} {value}")
        for name, histogram in sorted(self._histograms.items()):
            metric = _om_name(name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bucket, bucket_count in enumerate(histogram.counts):
                if bucket_count:
                    cumulative += bucket_count
                    upper = (1 << bucket) - 1 if bucket else 0
                    series = labeled("le=\"%d\"" % upper)
                    lines.append(f"{metric}_bucket{series} {cumulative}")
            series = labeled("le=\"+Inf\"")
            lines.append(f"{metric}_bucket{series} {histogram.count}")
            lines.append(f"{metric}_sum{extra} {histogram.total}")
            lines.append(f"{metric}_count{extra} {histogram.count}")
        if eof:
            lines.append("# EOF")
        return "\n".join(lines) + "\n"


def to_openmetrics_multi(registries: Dict[str, "MetricsRegistry"],
                         label: str = "bed") -> str:
    """Several registries as one labeled OpenMetrics document.

    Each registry's samples carry ``<label>="<name>"`` so a multi-bed
    cluster exports without metric-name collisions; parse a single
    bed back out with ``parse_openmetrics(text, labels={"bed": name})``.
    """
    chunks = [registry.to_openmetrics(labels={label: name}, eof=False)
              for name, registry in sorted(registries.items())]
    return "".join(chunks) + "# EOF\n"


def _om_value(text: str):
    number = float(text)
    return int(number) if number.is_integer() else number


def parse_openmetrics(text: str,
                      labels: Dict[str, str] = None
                      ) -> Dict[str, Dict[str, Any]]:
    """Parse :meth:`MetricsRegistry.to_openmetrics` output back.

    Returns ``{"counters": {name: {key: value}}, "gauges": {name:
    value}, "histograms": {name: {"count", "sum", "buckets"}}}`` with
    histogram buckets de-cumulated back to ``le_<upper>`` counts — the
    exact shape :meth:`Histogram.snapshot` uses, so round-trip tests
    can compare directly against a snapshot.

    ``labels`` filters the parse to samples carrying all the given
    label pairs (the selector for one bed inside a
    :func:`to_openmetrics_multi` document). ``None`` keeps every
    sample, matching the historical behavior.
    """
    types: Dict[str, str] = {}
    counters: Dict[str, Dict[str, Any]] = {}
    gauges: Dict[str, Any] = {}
    raw_hists: Dict[str, Dict[str, Any]] = {}
    wanted = {key: str(value) for key, value in (labels or {}).items()}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) == 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        series, _, value_text = line.rpartition(" ")
        value = _om_value(value_text)
        sample_labels: Dict[str, str] = {}
        if "{" in series:
            series, _, label_text = series.partition("{")
            for item in label_text.rstrip("}").split(","):
                key, _, quoted = item.partition("=")
                sample_labels[key] = quoted.strip('"') \
                    .replace('\\"', '"').replace("\\\\", "\\")
        if any(sample_labels.get(key) != value
               for key, value in wanted.items()):
            continue
        for suffix, family in (("_bucket", "histogram"),
                               ("_sum", "histogram"),
                               ("_count", "histogram"),
                               ("_total", "counter")):
            base = series[:-len(suffix)] if series.endswith(suffix) else None
            if base and types.get(base) == family:
                if family == "counter":
                    counters.setdefault(base, {})[
                        sample_labels.get("key", "")] = value
                else:
                    hist = raw_hists.setdefault(
                        base, {"count": 0, "sum": 0, "buckets": {}})
                    if suffix == "_sum":
                        hist["sum"] = value
                    elif suffix == "_count":
                        hist["count"] = value
                    else:
                        hist["buckets"][
                            sample_labels.get("le", "+Inf")] = value
                break
        else:
            if types.get(series) == "gauge":
                gauges[series] = value
    histograms: Dict[str, Dict[str, Any]] = {}
    for name, hist in raw_hists.items():
        finite = sorted(
            ((int(le), cum) for le, cum in hist["buckets"].items()
             if le != "+Inf"),
            key=lambda item: item[0])
        buckets = {}
        previous = 0
        for upper, cumulative in finite:
            if cumulative > previous:
                buckets[f"le_{upper}"] = cumulative - previous
            previous = cumulative
        histograms[name] = {"count": hist["count"], "sum": hist["sum"],
                            "buckets": buckets}
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}
