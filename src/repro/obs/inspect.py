"""Trace analysis: summaries, per-queue timelines, race reports.

Consumes the Chrome trace-event JSON written by
:meth:`repro.obs.tracer.Tracer.export_chrome` (or the merged variant).
Shared by ``tools/trace_inspect.py`` and the test suite so the CLI is a
thin argument parser around these functions.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Optional

__all__ = ["TraceData", "load_trace", "summarize_trace", "race_report",
           "wq_timeline", "track_summary", "render_summary",
           "render_races", "render_timeline", "render_track_summary"]


class TraceData:
    """A parsed trace: events plus track-name metadata."""

    def __init__(self, payload: Dict[str, Any]):
        events = payload.get("traceEvents", payload) \
            if isinstance(payload, dict) else payload
        if not isinstance(events, list):
            raise ValueError("not a Chrome trace: no traceEvents array")
        self.process_names: Dict[int, str] = {}
        self.thread_names: Dict[tuple, str] = {}
        self.events: List[Dict[str, Any]] = []
        for event in events:
            phase = event.get("ph")
            if phase == "M":
                args = event.get("args", {})
                if event.get("name") == "process_name":
                    self.process_names[event["pid"]] = args.get("name", "")
                elif event.get("name") == "thread_name":
                    self.thread_names[(event["pid"], event["tid"])] = \
                        args.get("name", "")
            else:
                self.events.append(event)

    def track_name(self, event: Dict[str, Any]) -> str:
        pid, tid = event.get("pid"), event.get("tid")
        process = self.process_names.get(pid, f"pid{pid}")
        thread = self.thread_names.get((pid, tid), f"tid{tid}")
        return f"{process}/{thread}"


def load_trace(source) -> TraceData:
    """Parse a trace from a path, file object, JSON string or dict."""
    if isinstance(source, (dict, list)):
        return TraceData(source)
    if isinstance(source, str) and source.lstrip().startswith(("{", "[")):
        return TraceData(json.loads(source))
    if hasattr(source, "read"):
        return TraceData(json.load(source))
    with open(source) as handle:
        return TraceData(json.load(handle))


def summarize_trace(data: TraceData) -> Dict[str, Any]:
    """Aggregate counts: per category, per track, race totals, span.

    Connection-plane spans (category ``conn``: pool lease waits,
    doorbell batch holds, shared-CQ demux) and cross-shard fabric hops
    (category ``link``, one track per directed shard pair) get their
    own census — ``conn`` and ``links`` — so a fleet trace summary
    answers "did the connection plane record anything" directly.
    """
    by_category: Counter = Counter()
    by_name: Counter = Counter()
    by_track: Counter = Counter()
    races = {"self_mod": 0, "stale_wqe": 0}
    conn = {"pool_wait": 0, "doorbell_batch": 0, "cqe_demux": 0,
            "cqe_demux_stale": 0}
    links: Counter = Counter()
    first_ts: Optional[float] = None
    last_ts = 0.0
    for event in data.events:
        category = event.get("cat", "?")
        name = event.get("name")
        by_category[category] += 1
        by_name[name or "?"] += 1
        by_track[data.track_name(event)] += 1
        if category == "race" and name in races:
            races[name] += 1
        elif category == "conn" and name:
            if name == "pool_wait":
                conn["pool_wait"] += 1
            elif name.startswith("batch["):
                conn["doorbell_batch"] += 1
            elif name == "demux":
                conn["cqe_demux"] += 1
            elif name == "demux:stale":
                conn["cqe_demux_stale"] += 1
        elif category == "link":
            links[data.track_name(event)] += 1
        ts = event.get("ts")
        if ts is not None:
            end = ts + event.get("dur", 0)
            first_ts = ts if first_ts is None else min(first_ts, ts)
            last_ts = max(last_ts, end)
    return {
        "events": len(data.events),
        "span_us": round((last_ts - (first_ts or 0)), 3),
        "categories": dict(sorted(by_category.items())),
        "top_names": by_name.most_common(12),
        "tracks": dict(sorted(by_track.items())),
        "races": races,
        "conn": conn,
        "links": dict(sorted(links.items())),
    }


def track_summary(data: TraceData) -> List[Dict[str, Any]]:
    """Per-track event counts and first/last timestamps.

    One entry per track that carries events, sorted by track name —
    enough to sanity-check a trace without opening Perfetto: did every
    expected queue/PU/port track record anything, and when?
    """
    tracks: Dict[str, Dict[str, Any]] = {}
    for event in data.events:
        name = data.track_name(event)
        entry = tracks.get(name)
        if entry is None:
            entry = tracks[name] = {
                "track": name, "events": 0,
                "first_us": None, "last_us": None,
                "names": Counter(),
            }
        entry["events"] += 1
        entry["names"][event.get("name", "?")] += 1
        ts = event.get("ts")
        if ts is not None:
            end = ts + event.get("dur", 0)
            if entry["first_us"] is None or ts < entry["first_us"]:
                entry["first_us"] = ts
            if entry["last_us"] is None or end > entry["last_us"]:
                entry["last_us"] = end
    return [tracks[name] for name in sorted(tracks)]


def race_report(data: TraceData) -> List[Dict[str, Any]]:
    """Every self_mod / stale_wqe event, normalized and time-ordered."""
    report = []
    for event in data.events:
        if event.get("cat") != "race":
            continue
        args = event.get("args", {})
        report.append({
            "kind": event.get("name"),
            "ts_us": event.get("ts"),
            "wq": args.get("wq"),
            "wr_index": args.get("wr_index"),
            "window_ns": args.get("window_ns"),
            "changed": args.get("changed", []),
        })
    report.sort(key=lambda entry: (entry["ts_us"], entry["wq"] or ""))
    return report


def wq_timeline(data: TraceData, wq_name: str) -> List[Dict[str, Any]]:
    """Chronological events on one work queue's track (by name)."""
    wanted = {f"wq:{wq_name}", wq_name}
    timeline = []
    for event in data.events:
        track = data.thread_names.get(
            (event.get("pid"), event.get("tid")), "")
        in_track = track in wanted
        about = event.get("args", {}).get("wq") == wq_name
        if in_track or about:
            timeline.append(event)
    timeline.sort(key=lambda event: (event.get("ts", 0),
                                     event.get("name", "")))
    return timeline


# -- text rendering (CLI output) -----------------------------------------


def render_summary(data: TraceData) -> str:
    summary = summarize_trace(data)
    lines = [
        f"events: {summary['events']}   "
        f"span: {summary['span_us']:.1f} us",
        "",
        "by category:",
    ]
    for category, count in summary["categories"].items():
        lines.append(f"  {category:10s} {count:8d}")
    lines.append("")
    lines.append("busiest tracks:")
    busiest = sorted(summary["tracks"].items(), key=lambda kv: -kv[1])
    for track, count in busiest[:10]:
        lines.append(f"  {track:40s} {count:8d}")
    races = summary["races"]
    lines.append("")
    lines.append(f"self-modification events: {races['self_mod']}   "
                 f"stale-fetch races: {races['stale_wqe']}")
    conn = summary["conn"]
    if any(conn.values()):
        lines.append("")
        lines.append(
            f"connection plane: {conn['pool_wait']} pool waits, "
            f"{conn['doorbell_batch']} doorbell batches, "
            f"{conn['cqe_demux']} CQE demuxes "
            f"({conn['cqe_demux_stale']} stale)")
    if summary["links"]:
        lines.append("")
        lines.append("cross-shard links:")
        for track, count in summary["links"].items():
            lines.append(f"  {track:40s} {count:8d}")
    return "\n".join(lines)


def render_track_summary(data: TraceData) -> str:
    summary = track_summary(data)
    if not summary:
        return "trace carries no events"
    lines = [f"{'track':44s} {'events':>8s} {'first_us':>12s} "
             f"{'last_us':>12s}  busiest"]
    for entry in summary:
        first = (f"{entry['first_us']:.3f}"
                 if entry["first_us"] is not None else "-")
        last = (f"{entry['last_us']:.3f}"
                if entry["last_us"] is not None else "-")
        name, count = entry["names"].most_common(1)[0]
        lines.append(f"{entry['track']:44s} {entry['events']:>8d} "
                     f"{first:>12s} {last:>12s}  {name} x{count}")
    return "\n".join(lines)


def render_races(data: TraceData) -> str:
    report = race_report(data)
    if not report:
        return ("no self-modification or stale-fetch events — every WQE "
                "executed exactly the bytes the host posted")
    lines = [f"{len(report)} race-inspector event(s):", ""]
    for entry in report:
        head = (f"[{entry['ts_us']:12.3f} us] {entry['kind']:9s} "
                f"wq={entry['wq']} wr={entry['wr_index']}")
        if entry["window_ns"] is not None:
            head += f" window={entry['window_ns']}ns"
        lines.append(head)
        for change in entry["changed"]:
            lines.append(f"    {change}")
    return "\n".join(lines)


def render_timeline(data: TraceData, wq_name: str) -> str:
    timeline = wq_timeline(data, wq_name)
    if not timeline:
        return f"no events recorded for work queue {wq_name!r}"
    lines = [f"{len(timeline)} event(s) on wq {wq_name!r}:", ""]
    for event in timeline:
        dur = event.get("dur")
        dur_text = f" +{dur:.3f}us" if dur else ""
        args = event.get("args", {})
        detail = " ".join(f"{key}={value}" for key, value in args.items()
                          if key != "changed")
        lines.append(f"[{event.get('ts', 0):12.3f} us]{dur_text:12s} "
                     f"{event.get('name'):20s} {detail}")
        for change in args.get("changed", []):
            lines.append(f"{'':28s}    {change}")
    return "\n".join(lines)
