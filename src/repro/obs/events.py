"""Shared event normalization for the observability tooling.

Three consumers — the critical-path profiler (``obs/critpath.py``),
the trace inspector (``tools/trace_inspect.py``) and the trace-diff
engine (``obs/tracediff.py``) — all need the same two conversions:

* **normalized events**: one uniform ``(ph, cat, name, track, ts, dur,
  args)`` view over either a live :class:`~repro.obs.tracer.Tracer`
  (exact integer nanoseconds) or an exported Chrome trace (microsecond
  floats, recovered exactly via ``round(ts_us * 1000)``);
* **WQE field diffs**: byte images resolved to the chain-IR field
  names of :data:`repro.nic.wqe.WQE_HEADER`, so a divergence report
  can say ``operand1: 0xdead -> 0xbeef`` instead of "byte 40 differs".

This module is pure post-processing — nothing here runs during a
simulation, so the zero-cost guarantee of ``repro.obs`` is unaffected.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..nic.wqe import WQE_HEADER, WQE_SLOT_SIZE

__all__ = [
    "NormalizedEvent",
    "events_from_tracer",
    "events_from_trace",
    "events_from_journal",
    "wqe_field_diff",
    "format_field_diff",
]


class NormalizedEvent:
    """One tracer event in integer nanoseconds with a resolved track."""

    __slots__ = ("ph", "cat", "name", "track", "ts", "dur", "args")

    def __init__(self, ph: str, cat: str, name: str, track: str,
                 ts: int, dur: int, args: Optional[Dict[str, Any]]):
        self.ph = ph
        self.cat = cat
        self.name = name
        self.track = track          # "<process>/<thread>", e.g. "nic/wq:ctl"
        self.ts = ts
        self.dur = dur
        self.args = args or {}

    @property
    def end(self) -> int:
        return self.ts + self.dur

    def __repr__(self) -> str:
        return (f"<Ev {self.ph} {self.name} @{self.ts}"
                f"{f'+{self.dur}' if self.dur else ''} {self.track}>")


def events_from_tracer(tracer) -> List[NormalizedEvent]:
    """Normalize a live tracer's events (already integer ns)."""
    proc = {pid: label for label, pid in tracer._pids.items()}
    thread: Dict[Tuple[int, int], str] = {
        (pid, tid): label for (pid, label), tid in tracer._tids.items()}
    out: List[NormalizedEvent] = []
    for ph, cat, name, pid, tid, ts, dur, args in tracer.events:
        if ph == "C":
            continue
        track = (f"{proc.get(pid, f'pid{pid}')}/"
                 f"{thread.get((pid, tid), f'tid{tid}')}")
        out.append(NormalizedEvent(ph, cat, name, track, ts, dur or 0,
                                   args))
    return out


def events_from_trace(data) -> List[NormalizedEvent]:
    """Normalize a parsed Chrome trace (``repro.obs.TraceData``)."""
    out: List[NormalizedEvent] = []
    for event in data.events:
        ph = event.get("ph")
        if ph == "C":
            continue
        ts = round(event.get("ts", 0) * 1000)
        dur = round(event.get("dur", 0) * 1000)
        out.append(NormalizedEvent(
            ph, event.get("cat", ""), event.get("name", ""),
            data.track_name(event), ts, dur, event.get("args")))
    return out


#: Journal record kind -> (category, track-field) for the event view.
_JOURNAL_CATS = {
    "post": "queue",
    "doorbell": "queue",
    "fetch": "fetch",
    "exec": "exec",
    "done": "exec",
    "wait": "sync",
    "enable": "sync",
    "cqe": "cqe",
    "atomic": "atomic",
    "store": "mem",
    "checkpoint": "checkpoint",
}


def _journal_name(record: Dict[str, Any]) -> str:
    kind = record["kind"]
    op = record.get("op")
    if kind in ("post", "fetch", "done") and op:
        return f"{kind}:{op}"
    if kind == "cqe" and op:
        return f"cqe:{op}"
    if kind == "atomic" and op:
        return op
    if kind == "store":
        return f"store:{record.get('region', '?')}"
    return kind


def _journal_track(record: Dict[str, Any]) -> str:
    kind = record["kind"]
    if "wq" in record:
        return f"wq:{record['wq']}"
    if kind == "cqe":
        return f"cq:{record.get('cq', '?')}"
    if kind == "atomic":
        return f"{record.get('nic', '?')}/atomics"
    if kind == "store":
        return f"{record.get('mem', '?')}/stores"
    return kind


def events_from_journal(records) -> List[NormalizedEvent]:
    """Normalize flight-recorder journal records (see ``obs/recorder``).

    Every journal record is an instant on simulated time; the causal
    identity (queue, WR index, CQE count...) rides in ``args`` — the
    original record dict itself.
    """
    out: List[NormalizedEvent] = []
    for record in records:
        kind = record.get("kind")
        if kind in (None, "meta"):
            continue
        out.append(NormalizedEvent(
            "i", _JOURNAL_CATS.get(kind, kind), _journal_name(record),
            _journal_track(record), record.get("ts", 0), 0, record))
    return out


# -- WQE field diffing ----------------------------------------------------


def wqe_field_diff(old: bytes, new: bytes) -> List[Dict[str, Any]]:
    """Field-level diff between two WQE byte images.

    Slot 0 resolves to :data:`WQE_HEADER` field names with both values
    as integers; follow-on (SGE) slots are reported coarsely with
    ``None`` values. The tracer's human-readable ``diff_wqe_bytes`` and
    the trace-diff engine's typed reports are both built on this.
    """
    diffs: List[Dict[str, Any]] = []
    for name, field in WQE_HEADER.fields.items():
        lo, hi = field.offset, field.offset + field.width
        before = old[lo:hi]
        after = new[lo:hi]
        if before != after:
            diffs.append({"field": name,
                          "a": int.from_bytes(before, "big"),
                          "b": int.from_bytes(after, "big")})
    for slot in range(1, len(new) // WQE_SLOT_SIZE):
        lo, hi = slot * WQE_SLOT_SIZE, (slot + 1) * WQE_SLOT_SIZE
        if old[lo:hi] != new[lo:hi]:
            diffs.append({"field": f"slot[{slot}]", "a": None, "b": None})
    return diffs


def format_field_diff(diff: Dict[str, Any],
                      arrow: str = "->") -> str:
    """``operand1: 0xdead -> 0xbeef`` (or ``slot[1] bytes changed``)."""
    if diff["a"] is None:
        return f"{diff['field']} bytes changed"
    return f"{diff['field']}: {diff['a']:#x} {arrow} {diff['b']:#x}"
