#!/usr/bin/env python
"""Simulator wall-clock speed smoke test.

Replays two canonical workloads through the full stack and measures how
many kernel events per CPU-second the simulator sustains:

* ``fig13_list_traversal`` — RedN list-traversal offload calls over a
  client connection (the Fig 13 scenario): managed-queue fetches,
  self-modifying WQE chains, WAIT/ENABLE ordering.
* ``table3_flood`` — ib_write_bw-style WRITE and CAS floods across 8
  QPs (the Table 3 scenario): batch prefetch, pipelined completions,
  atomic serialization.
* ``cluster_simspeed`` — 16 testbeds on the sharded simulator
  (``repro.bench.cluster``): closed-loop cross-bed RPCs over 1 µs
  inter-shard links, driven once by the conservative sharded
  synchronizer and once by the one-timestamp-window serial merge. The
  two drives must be bit-identical; their events/sec ratio is the
  recorded ``speedup``.
* ``fleet_simspeed`` — the sharded KV fleet (``repro.bench.fleet``):
  8 cuckoo-KV shards serving 1024 pooled logical connections with
  consistent-hash routing, shared CQs, and doorbell batching. Same
  dual-drive bit-identity contract and speedup measurement as the
  cluster workload, plus an ``aggregate_mops`` figure.

Methodology: the testbed build (allocating the 256 MB simulated DRAM
dominates setup) is excluded; only the simulation run phase is timed,
with the GC disabled, using ``time.process_time`` so a loaded machine
does not skew results. Each workload runs ``--reps`` times and the best
rep counts.

Usage:

    PYTHONPATH=src python tools/perf_smoke.py            # compare
    PYTHONPATH=src python tools/perf_smoke.py --update-baseline

The committed baseline lives in ``BENCH_simspeed.json`` at the repo
root. Exit status:

* 0 — within tolerance of the baseline (or baseline just [re]written),
* 1 — events/sec regressed more than 30% on any workload, or a
  dual-drive workload's sharded-vs-serial speedup fell below its floor,
* 2 — determinism fingerprint drifted (simulated results changed —
  that is a correctness bug, not a perf problem),
* 3 — ``--check`` was asked but no committed baseline exists.

``--check`` is the CI mode: it never writes the baseline file.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

BASELINE_PATH = REPO_ROOT / "BENCH_simspeed.json"
REGRESSION_TOLERANCE = 0.30
# Dual-drive workloads must keep a real sharded-vs-serial win. The
# committed baseline records the measured speedups (cluster >= 2.5x,
# fleet >= 1.8x); the CI floors are deliberately conservative so
# shared-runner noise does not flake the gate. The fleet floor is
# lower because its zipfian skew concentrates work on the hot shard,
# which bounds the conservative synchronizer's parallelism.
CLUSTER_SPEEDUP_FLOOR = 1.5
FLEET_SPEEDUP_FLOOR = 1.2

LIST_SIZE = 8
VALUE_SIZE = 64


def _build_fig13(calls: int = 48):
    """Fig 13 replay: list-traversal offload calls over one client."""
    from repro.bench import Testbed
    from repro.datastructs import LinkedList, SlabStore
    from repro.offloads.list_traversal import ListTraversalOffload
    from repro.redn import RednContext
    from repro.redn.offload import OffloadClient, OffloadConnection

    bed = Testbed(num_clients=1)
    proc = bed.server.spawn_process("list-server")
    pd = proc.create_pd()
    slab_alloc = proc.alloc(4 * 1024 * 1024, label="slab")
    node_alloc = proc.alloc(64 * 1024, label="nodes")
    data_mr = pd.register(node_alloc)
    pd.register(slab_alloc)
    slab = SlabStore(bed.server.memory, slab_alloc)
    lst = LinkedList(bed.server.memory, node_alloc, slab)
    keys = [0x100 + i for i in range(LIST_SIZE)]
    for key in keys:
        lst.append(key, bytes([key & 0xFF]) * VALUE_SIZE)
    ctx = RednContext(bed.server.nic, pd, process=proc)
    conn = OffloadConnection(ctx, bed.clients[0].nic, bed.client_pd(0),
                             name="ps13")
    offload = ListTraversalOffload(ctx, lst, data_mr, conn,
                                   max_nodes=LIST_SIZE, use_break=False)
    client = OffloadClient(conn, bed.client_verbs(0))
    call_keys = [keys[i % LIST_SIZE] for i in range(calls)]

    def scenario():
        latencies = []
        for index, key in enumerate(call_keys):
            if index % 8 == 0:
                # The plain-variant worker ring holds ~16 pre-posted
                # instances; replenish in batches as calls consume them.
                offload.post_instances(min(8, len(call_keys) - index))
            result = yield from client.call(offload.payload_for(key),
                                            timeout_ns=60_000_000)
            assert result.ok
            latencies.append(result.latency_ns)
            yield bed.sim.timeout(60_000)
        return latencies

    def run():
        latencies = bed.run(scenario())
        return {
            "sim_time_ns": bed.sim.now,
            "latency_sum_ns": sum(latencies),
            "calls": len(latencies),
        }

    return bed.sim, run


def _build_table3(qps_n: int = 8, ops_per_qp: int = 512, wave: int = 256):
    """Table 3 replay: WRITE then CAS floods across ``qps_n`` QPs."""
    from repro.bench import Testbed
    from repro.ibv import wr_cas, wr_write

    bed = Testbed(num_clients=1)
    proc = bed.server.spawn_process("sink")
    pd = proc.create_pd()
    sink = proc.alloc(4096, label="sink")
    sink_mr = pd.register(sink)
    qps = []
    for index in range(qps_n):
        server_qp = proc.create_qp(pd, name=f"ps3s{index}")
        client_qp = bed.clients[0].nic.create_qp(
            bed.client_pd(0), send_slots=512, name=f"ps3c{index}")
        server_qp.connect(client_qp)
        qps.append(client_qp)
    src = bed.clients[0].memory.alloc(64, owner="client")
    sim = bed.sim
    waves = max(1, ops_per_qp // wave)

    def make_write():
        return wr_write(src.addr, 64, sink.addr, sink_mr.rkey,
                        signaled=False)

    def make_cas():
        return wr_cas(sink.addr, sink_mr.rkey, 0, 1, signaled=False)

    def flood(qp, make_wqe):
        for _ in range(waves):
            base = qp.send_wq.cq.count
            for index in range(wave):
                wqe = make_wqe()
                if index == wave - 1:
                    wqe.flags |= 0x1
                else:
                    wqe.flags &= ~0x1
                qp.post_send(wqe)
            yield qp.send_wq.cq.wait_for_count(base + 1)

    def phase(make_wqe):
        start = sim.now
        procs = [sim.process(flood(qp, make_wqe), name=f"flood{i}")
                 for i, qp in enumerate(qps)]
        for p in procs:
            if not p.triggered:
                yield p
        total = qps_n * waves * wave
        return total / ((sim.now - start) / 1e9)

    def run():
        write_rate = bed.run(phase(make_write))
        cas_rate = bed.run(phase(make_cas))
        return {
            "sim_time_ns": sim.now,
            "write_mops": round(write_rate / 1e6, 3),
            "cas_mops": round(cas_rate / 1e6, 3),
        }

    return sim, run


WORKLOADS = {
    "fig13_list_traversal": _build_fig13,
    "table3_flood": _build_table3,
}

CLUSTER_WORKLOAD = "cluster_simspeed"
FLEET_WORKLOAD = "fleet_simspeed"


def _build_cluster_scenario():
    from repro.bench.cluster import build_cluster
    return build_cluster()


def _build_fleet_scenario():
    from repro.bench.fleet import build_fleet
    return build_fleet()


#: Dual-drive workloads: scenario builder + sharded-vs-serial speedup
#: floor enforced by ``--check``.
SPEEDUP_WORKLOADS = {
    CLUSTER_WORKLOAD: (_build_cluster_scenario, CLUSTER_SPEEDUP_FLOOR),
    FLEET_WORKLOAD: (_build_fleet_scenario, FLEET_SPEEDUP_FLOOR),
}

#: Every workload perf_smoke measures, in reporting order.
ALL_WORKLOADS = list(WORKLOADS) + list(SPEEDUP_WORKLOADS)


def _drive_scenario(build, serial: bool):
    """One timed dual-drive run; returns (fingerprint, measures, events, cpu)."""
    scenario = build()
    events_before = sum(scenario.events_executed())
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        fingerprint, measures = scenario.run(serial=serial)
        cpu = time.process_time() - start
    finally:
        gc.enable()
    events = sum(scenario.events_executed()) - events_before
    return fingerprint, measures, events, cpu


def run_speedup_workload(name: str, reps: int = 3):
    """Measure a dual-drive workload in both modes.

    Every rep builds two fresh scenarios — one driven by the sharded
    synchronizer, one by the serial merge — and their fingerprints and
    event counts must be bit-identical (that is the workload's
    correctness claim, checked every run, not just in tests). The best
    rep per mode counts; ``speedup`` is the events/sec ratio.
    """
    build, _floor = SPEEDUP_WORKLOADS[name]
    best = {"sharded": None, "serial": None}
    fingerprint = None
    events = None
    mops = None
    for _ in range(reps):
        for mode in ("sharded", "serial"):
            fp, measures, ev, cpu = _drive_scenario(
                build, serial=(mode == "serial"))
            if fingerprint is None:
                fingerprint, events = fp, ev
                mops = measures.get("aggregate_mops")
            elif (fp, ev) != (fingerprint, events):
                raise AssertionError(
                    f"{name}: {mode} drive diverged: "
                    f"{(fp, ev)} != {(fingerprint, events)}")
            if best[mode] is None or cpu < best[mode]:
                best[mode] = cpu
    rate = round(events / best["sharded"]) if best["sharded"] else 0
    serial_rate = round(events / best["serial"]) if best["serial"] else 0
    result = {
        "events": events,
        "cpu_seconds": round(best["sharded"], 4),
        "events_per_sec": rate,
        "serial_cpu_seconds": round(best["serial"], 4),
        "serial_events_per_sec": serial_rate,
        "speedup": round(rate / serial_rate, 2) if serial_rate else 0.0,
        "fingerprint": fingerprint,
    }
    if mops is not None:
        result["aggregate_mops"] = mops
    return result


def run_workload(name: str, reps: int = 3):
    """Measure one workload; returns a result dict for the baseline.

    The scenario is rebuilt for every rep (setup excluded from timing);
    the best rep's CPU time counts. Fingerprints must agree across reps
    — same-process nondeterminism would already be a bug.
    """
    if name in SPEEDUP_WORKLOADS:
        return run_speedup_workload(name, reps=reps)
    build = WORKLOADS[name]
    best_cpu = None
    events = None
    fingerprint = None
    for _ in range(reps):
        sim, run = build()
        # Kernel progress counters come from the canonical metrics
        # snapshot (repro.obs) — the same numbers sim.stats renders.
        gauges = sim.metrics.snapshot()["gauges"]
        events_before = gauges["sim.events_executed"]
        gc.collect()
        gc.disable()
        try:
            start = time.process_time()
            result = run()
            cpu = time.process_time() - start
        finally:
            gc.enable()
        gauges = sim.metrics.snapshot()["gauges"]
        rep_events = gauges["sim.events_executed"] - events_before
        if fingerprint is None:
            fingerprint, events = result, rep_events
        elif (result, rep_events) != (fingerprint, events):
            raise AssertionError(
                f"{name}: nondeterministic across reps: "
                f"{(result, rep_events)} != {(fingerprint, events)}")
        if best_cpu is None or cpu < best_cpu:
            best_cpu = cpu
    return {
        "events": events,
        "cpu_seconds": round(best_cpu, 4),
        "events_per_sec": round(events / best_cpu) if best_cpu else 0,
        "fingerprint": fingerprint,
    }


def measure_tails() -> dict:
    """Per-workload p99 request latency (ns) via the telemetry plane.

    One untimed drive per workload with a telemetry collector attached
    (never mixed into the perf-timed reps — the obs flag is zero-cost
    only when off). ``table3_flood`` has no request concept and is
    omitted; ``bench_history`` renders missing tails as "-".
    """
    from repro.bench.cluster import build_cluster
    from repro.bench.fleet import build_fleet
    from repro.obs.metrics import Histogram
    from repro.obs.telemetry import FleetTelemetry

    tails = {}

    sim, run = _build_fig13()
    fleet = FleetTelemetry()
    fleet.attach(sim, bed="fig13")
    try:
        run()
        fleet.finalize()
    finally:
        fleet.close()
    hist = sim.metrics.histogram("telemetry.request_ns")
    if hist.count:
        tails["fig13_list_traversal"] = hist.quantile(0.99)

    for name, builder in ((CLUSTER_WORKLOAD, build_cluster),
                          (FLEET_WORKLOAD, build_fleet)):
        scenario = builder(telemetry_path="")
        fleet = scenario.attach_telemetry()
        scenario.run()
        merged = Histogram()
        for record in fleet.records:
            if record["latency"]:
                merged.merge(Histogram.from_snapshot(record["latency"]))
        if merged.count:
            tails[name] = merged.quantile(0.99)
    return tails


def profile_workloads(top: int = 25) -> str:
    """Run every workload once under cProfile; return a text report.

    This is the CI artifact behind ``--profile``: when the perf gate
    flags a regression, the hotspot table says *where* the cycles went
    without anyone having to reproduce the run locally.
    """
    import cProfile
    import io
    import pstats

    sections = []
    for name in ALL_WORKLOADS:
        profiler = cProfile.Profile()
        if name in SPEEDUP_WORKLOADS:
            build, _floor = SPEEDUP_WORKLOADS[name]
            scenario = build()
            profiler.enable()
            scenario.run(serial=False)
            profiler.disable()
        else:
            sim, run = WORKLOADS[name]()
            profiler.enable()
            run()
            profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        stats.sort_stats("tottime").print_stats(top)
        sections.append(f"=== {name} (top {top} by cumulative, "
                        f"then by tottime) ===\n{buffer.getvalue()}")
    return "\n".join(sections)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite BENCH_simspeed.json with this run")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: compare only, never write the "
                             "baseline; exit 3 if it is missing")
    parser.add_argument("--reps", type=int, default=3,
                        help="reps per workload (best counts, default 3)")
    parser.add_argument("--profile", metavar="FILE", default=None,
                        help="also run each workload once under cProfile "
                             "and write a top-hotspot report to FILE "
                             "('-' for stdout)")
    parser.add_argument("--fingerprints-only", action="store_true",
                        help="one untimed rep per workload; compare "
                             "only the determinism fingerprints against "
                             "the committed baseline (the CI obs-"
                             "neutrality step — wall-clock noise never "
                             "fails it). Exit 2 on drift, 3 if the "
                             "baseline is missing.")
    args = parser.parse_args(argv)
    if args.check and args.update_baseline:
        parser.error("--check and --update-baseline are exclusive")
    if args.fingerprints_only and args.update_baseline:
        parser.error("--fingerprints-only and --update-baseline are "
                     "exclusive")
    if args.fingerprints_only:
        args.reps = 1

    results = {}
    for name in ALL_WORKLOADS:
        results[name] = run_workload(name, reps=args.reps)
        r = results[name]
        if args.fingerprints_only:
            continue
        line = (f"{name:24s} {r['events_per_sec']:>10,d} events/s "
                f"({r['events']} events in {r['cpu_seconds']:.3f}s CPU)")
        if "speedup" in r:
            line += (f" | serial {r['serial_events_per_sec']:,d} ev/s"
                     f" | speedup {r['speedup']:.2f}x")
        print(line)

    if args.fingerprints_only:
        if not BASELINE_PATH.exists():
            print(f"--fingerprints-only: no baseline at {BASELINE_PATH} "
                  "(commit one with --update-baseline)")
            return 3
        baseline = json.loads(BASELINE_PATH.read_text())["workloads"]
        status = 0
        for name, result in results.items():
            base = baseline.get(name)
            if base is None:
                print(f"{name}: not in baseline")
                continue
            if result["fingerprint"] != base["fingerprint"]:
                print(f"{name}: DETERMINISM DRIFT — simulated results "
                      f"changed:\n  baseline: {base['fingerprint']}\n"
                      f"  current:  {result['fingerprint']}")
                status = 2
            else:
                print(f"{name}: fingerprint bit-identical to baseline")
        return status

    if args.profile is not None:
        report = profile_workloads()
        if args.profile == "-":
            print(report)
        else:
            Path(args.profile).write_text(report)
            print(f"profile report written: {args.profile}")

    if args.check and not BASELINE_PATH.exists():
        print(f"--check: no baseline at {BASELINE_PATH} "
              "(commit one with --update-baseline)")
        return 3
    if args.update_baseline or not BASELINE_PATH.exists():
        payload = {"schema": 1, "workloads": results}
        BASELINE_PATH.write_text(json.dumps(payload, indent=2,
                                            sort_keys=True) + "\n")
        action = "updated" if args.update_baseline else "created"
        print(f"baseline {action}: {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())["workloads"]
    status = 0
    for name, result in results.items():
        base = baseline.get(name)
        if base is None:
            print(f"{name}: not in baseline (run --update-baseline)")
            continue
        if result["fingerprint"] != base["fingerprint"]:
            print(f"{name}: DETERMINISM DRIFT — simulated results "
                  f"changed:\n  baseline: {base['fingerprint']}\n"
                  f"  current:  {result['fingerprint']}")
            status = 2
            continue
        floor = base["events_per_sec"] * (1 - REGRESSION_TOLERANCE)
        ratio = result["events_per_sec"] / base["events_per_sec"]
        if result["events_per_sec"] < floor:
            print(f"{name}: REGRESSION — {result['events_per_sec']:,d} "
                  f"events/s is {ratio:.2f}x of baseline "
                  f"{base['events_per_sec']:,d}")
            status = max(status, 1)
        elif (name in SPEEDUP_WORKLOADS
              and result["speedup"] < SPEEDUP_WORKLOADS[name][1]):
            print(f"{name}: SPEEDUP LOST — sharded is only "
                  f"{result['speedup']:.2f}x of the serial merge "
                  f"(floor {SPEEDUP_WORKLOADS[name][1]}x, baseline "
                  f"{base.get('speedup', '?')}x)")
            status = max(status, 1)
        else:
            print(f"{name}: ok ({ratio:.2f}x of baseline)")
    return status


if __name__ == "__main__":
    sys.exit(main())
