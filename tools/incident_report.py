#!/usr/bin/env python3
"""incident_report: run a fleet fault scenario and triage it.

Drives one of the deterministic fault scenarios from
``repro.bench.faults`` — ``storm`` (CPU-contention storm on the hot
shard, fig15 generalized), ``failover`` (shard-kill with HashRing
rebalancing, fig16 generalized) or ``clean`` (no fault) — with the
telemetry plane and the :class:`~repro.obs.sentry.FleetSentry`
attached, then renders the incident report::

    PYTHONPATH=src python tools/incident_report.py storm        # table
    PYTHONPATH=src python tools/incident_report.py failover --timeline
    PYTHONPATH=src python tools/incident_report.py storm --json -
    PYTHONPATH=src python tools/incident_report.py storm --flame -
    PYTHONPATH=src python tools/incident_report.py clean \\
        --fail-on-false-positive                                # CI gate
    PYTHONPATH=src python tools/incident_report.py storm --serial \\
        --json storm.json       # byte-identical to the sharded drive

The report is deterministic: byte-identical between the sharded and
serial drives (``--serial``) and across repeat runs. Every injected
fault is matched against the detected incidents
(:func:`~repro.obs.sentry.triage_verdict`): a fault no incident
explains is *missed*; an incident no fault explains is a *false
positive*; detection latency is simulated ns from injection to the
matching incident's open timestamp.

Exit codes: 0 ok; 1 triage gate failed (``--fail-on-unexplained`` with
a missed fault, ``--fail-on-false-positive`` with an unmatched
incident, or ``--expect-incidents`` mismatch); 2 scenario error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
for path in (str(SRC), str(REPO_ROOT / "tools")):
    if path not in sys.path:
        sys.path.insert(0, path)


def render_report(run) -> str:
    from repro.bench import render_table

    report = run.report
    verdict = run.verdict
    lines = []
    drive = "serial" if run.serial else "sharded"
    lines.append(
        f"{run.scenario} ({drive}): {run.fingerprint['requests']} "
        f"requests, frontier {run.fingerprint['frontier_ns']}ns, "
        f"{report['records_seen']} telemetry records, "
        f"{report['anomalies_total']} anomalies, "
        f"{len(report['incidents'])} incident(s)")
    for fault in run.faults:
        cleared = (f" .. {fault['t_clear_ns']}ns"
                   if fault.get("t_clear_ns") else "")
        lines.append(
            f"fault: {fault['kind']} on {fault['bed']} at "
            f"{fault['t_inject_ns']}ns{cleared} {fault['detail']}")
    for incident in report["incidents"]:
        lines.append("")
        lines.append(
            f"incident #{incident['id']}: windows "
            f"[{incident['first_window']}, {incident['last_window']}], "
            f"opened {incident['open_at_ns']}ns, shards "
            f"{incident['shards']}")
        headers = ["rank", "detector", "shard", "queue", "phase",
                   "value", "baseline", "sev", "at ns"]
        rows = [[str(c["rank"]), c["detector"], str(c["shard"]),
                 str(c["queue"] or "-"), c["phase"], str(c["value"]),
                 str(c["baseline"]), f"{c['severity']:.2f}",
                 str(c["at_ns"])]
                for c in incident["causes"]]
        lines.append(render_table(
            headers, rows, title=f"ranked causes — incident "
                                 f"#{incident['id']}"))
        diff = incident.get("blame_diff")
        if diff and diff.get("phases"):
            top = diff["phases"][0]
            lines.append(
                f"blame diff vs pre-incident baseline: p99 "
                f"{diff.get('baseline_p99_ns')} -> "
                f"{diff.get('p99_ns')}ns; biggest mover: "
                f"{top['phase']} ({top['delta_ns']:+}ns mean)")
        capture = incident.get("capture")
        if capture:
            lines.append(
                f"capture: {capture['records']} flight-recorder "
                f"records from {capture['bed']} over "
                f"[{capture['from_ns']}, {capture['to_ns']}]ns "
                f"{capture['kinds']}"
                + (" (truncated)" if capture["truncated"] else ""))
    lines.append("")
    for entry in verdict["explained"]:
        lines.append(
            f"explained: {entry['fault']['kind']} on shard "
            f"{entry['fault']['shard']} -> incident "
            f"#{entry['incident']} ({entry['top_cause']['detector']} / "
            f"{entry['top_cause']['phase']}) after "
            f"{entry['detection_latency_ns']}ns")
    for fault in verdict["missed"]:
        lines.append(f"MISSED: {fault['kind']} on shard "
                     f"{fault['shard']} matched no incident")
    for incident_id in verdict["false_positives"]:
        lines.append(f"FALSE POSITIVE: incident #{incident_id} "
                     f"matched no fault")
    if not run.faults and not report["incidents"]:
        lines.append("clean: no faults injected, no incidents raised")
    return "\n".join(lines)


def render_timeline(report) -> str:
    lines = []
    for incident in report["incidents"]:
        lines.append(f"incident #{incident['id']} timeline:")
        for event in incident["timeline"]:
            lines.append(f"  {event['at_ns']:>10}ns  "
                         f"{event['event']:<8} {event['detail']}")
    return "\n".join(lines) if lines else "no incidents"


def render_flame(report) -> str:
    from repro.obs.blame import folded_blame
    lines = []
    for incident in report["incidents"]:
        lines.extend(folded_blame([{"exemplars": incident["exemplars"],
                                    "shard": None}]))
    return "\n".join(lines)


def main(argv=None) -> int:
    from repro.bench.faults import SCENARIOS

    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("scenario", choices=SCENARIOS,
                        help="fault scenario to run and triage")
    parser.add_argument("--serial", action="store_true",
                        help="drive the serial merge instead of the "
                             "sharded synchronizer (identical report)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--clients", type=int, default=16,
                        help="clients per shard (default 16)")
    parser.add_argument("--requests", type=int, default=16,
                        help="requests per client (default 16)")
    parser.add_argument("--window", type=int, default=20_000,
                        metavar="NS", help="telemetry window width")
    parser.add_argument("--exemplars", type=int, default=4, metavar="K",
                        help="tail exemplars kept per window record")
    parser.add_argument("--no-capture", action="store_true",
                        help="skip the per-fault flight recorders")
    parser.add_argument("--json", metavar="FILE",
                        help="write the full incident report as JSON "
                             "('-' for stdout); this is the "
                             "byte-identity surface")
    parser.add_argument("--timeline", action="store_true",
                        help="print per-incident event timelines")
    parser.add_argument("--flame", metavar="FILE",
                        help="write incident exemplars as flamegraph "
                             "folded stacks ('-' for stdout)")
    parser.add_argument("--expect-incidents", type=int, metavar="N",
                        help="exit 1 unless exactly N incidents")
    parser.add_argument("--fail-on-unexplained", action="store_true",
                        help="exit 1 if any injected fault matched no "
                             "incident")
    parser.add_argument("--fail-on-false-positive", action="store_true",
                        help="exit 1 if any incident matched no fault")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the table (exports/gates only)")
    args = parser.parse_args(argv)

    from repro.bench.faults import run_triage
    from repro.bench.fleet import FleetError
    try:
        run = run_triage(
            args.scenario, serial=args.serial, num_shards=args.shards,
            clients_per_shard=args.clients,
            requests_per_client=args.requests, window_ns=args.window,
            exemplars=args.exemplars, capture=not args.no_capture)
    except FleetError as exc:
        print(f"incident_report: fleet run failed: {exc}",
              file=sys.stderr)
        for bed, process in zip(exc.beds, exc.processes):
            print(f"incident_report:   bed {bed}: {process}",
                  file=sys.stderr)
        return 2
    except (ValueError, RuntimeError) as exc:
        print(f"incident_report: {exc}", file=sys.stderr)
        return 2

    if args.json:
        if args.json == "-":
            sys.stdout.write(run.report_json)
        else:
            Path(args.json).write_text(run.report_json)
            print(f"wrote incident report to {args.json}",
                  file=sys.stderr)
    if args.flame:
        text = render_flame(run.report) + "\n"
        if args.flame == "-":
            sys.stdout.write(text)
        else:
            Path(args.flame).write_text(text)
    if not args.quiet:
        print(render_report(run))
        if args.timeline:
            print()
            print(render_timeline(run.report))

    verdict = run.verdict
    failed = []
    if (args.expect_incidents is not None
            and verdict["incidents"] != args.expect_incidents):
        failed.append(f"expected {args.expect_incidents} incident(s), "
                      f"got {verdict['incidents']}")
    if args.fail_on_unexplained and verdict["missed"]:
        failed.append(f"{len(verdict['missed'])} fault(s) unexplained")
    if args.fail_on_false_positive and verdict["false_positives"]:
        failed.append(f"incident(s) {verdict['false_positives']} "
                      f"matched no fault")
    for reason in failed:
        print(f"incident_report: GATE FAILED: {reason}",
              file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
