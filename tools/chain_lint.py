#!/usr/bin/env python3
"""chain_lint: run the IR verifier over every built-in chain program.

Builds each built-in RedN program (the §3.3 constructs, the Appendix A
machines, and all three offloads) on a fresh simulated testbed, lowers
it through the builder -> IR -> linker pipeline, and reports:

* the Table 2 construct cost derived from the IR (xC + yA + zE),
* every hazard the verifier finds (expected: none on built-ins),
* the per-queue ordering-mode plan (managed vs normal, §3.1 costs).

Usage:

    PYTHONPATH=src python tools/chain_lint.py [--fail-on-hazard] [-v]

``--fail-on-hazard`` exits non-zero if any program has a hazard, for
CI. ``-v`` additionally prints the ordering rationale per queue.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, List, Tuple

from repro.apps import MemcachedServer
from repro.bench import Testbed
from repro.datastructs import (
    BUCKET_SIZE,
    CuckooTable,
    LinkedList,
    SlabStore,
)
from repro.ibv import wr_cas, wr_write
from repro.memory import HostMemory, ProtectionDomain
from repro.net import Fabric
from repro.nic import RNIC
from repro.offloads.hash_lookup import HashGetOffload
from repro.offloads.list_traversal import ListTraversalOffload
from repro.offloads.recycled_get import (
    RECYCLED_CONN_KWARGS,
    RecycledHashGetOffload,
)
from repro.redn import ProgramBuilder, RecycledLoop, RednContext
from repro.redn.ir import ChainProgram
from repro.redn.movmachine import (
    AddConst,
    AddReg,
    MovImm,
    MovLoad,
    MovMachine,
    MovStore,
)
from repro.redn.offload import OffloadConnection
from repro.redn.passes import chain_cost, plan_ordering, verify
from repro.redn.turing import BINARY_INCREMENT, NicTuringMachine
from repro.sim import Simulator


# -- fresh single-host worlds -------------------------------------------------

class _Loopback:
    """Minimal one-NIC world (the tests' LoopbackRig, inlined)."""

    def __init__(self):
        self.sim = Simulator()
        self.memory = HostMemory(name="mem")
        self.nic = RNIC(self.sim, self.memory, name="nic")
        self.pd = ProtectionDomain(self.memory, name="pd")
        self.qp_a, self.qp_b = self.nic.create_loopback_pair(self.pd)
        self.ctx = RednContext(self.nic, self.pd, owner="chain-lint")


def _build_if() -> ChainProgram:
    """The §3.3 if: CAS arms a disarmed branch template."""
    world = _Loopback()
    ctx = world.ctx
    builder = ProgramBuilder(ctx, name="if")
    src, _ = ctx.alloc_registered(8, label="src")
    dst, dst_mr = ctx.alloc_registered(8, label="dst")

    ctl = builder.control_queue(name="ctl")
    worker = builder.worker_queue(name="wrk")
    branches = builder.worker_queue(name="brn")
    live = wr_write(src.addr, 8, dst.addr, dst_mr.rkey)
    live.wr_id = 0x42
    branch = builder.template(branches, live, tag="if.branch")
    builder.emit_if(ctl, worker, branch, compare_id=0x42, tag="if")
    return builder.program


def _build_wide_if() -> ChainProgram:
    """The §3.5 wide if: 96-bit compare via chained CAS segments."""
    world = _Loopback()
    ctx = world.ctx
    builder = ProgramBuilder(ctx, name="wide-if")
    src, _ = ctx.alloc_registered(8)
    dst, dst_mr = ctx.alloc_registered(8)

    ctl = builder.control_queue(name="ctl")
    predicate = builder.worker_queue(name="pred")
    stages = builder.worker_queue(name="stages")
    branches = builder.worker_queue(name="branches")
    branch = builder.template(
        branches, wr_write(src.addr, 8, dst.addr, dst_mr.rkey),
        tag="wide.branch")
    builder.emit_wide_if(ctl, predicate, stages, branch,
                         compare_value=(0xABC << 64) | 0x123456789,
                         operand_bits=96)
    return builder.program


def _build_recycled_while() -> ChainProgram:
    """The §3.4 recycled while loop (split restores + rearm)."""
    world = _Loopback()
    ctx = world.ctx
    builder = ProgramBuilder(ctx, name="recycled-while")
    dummy, dummy_mr = ctx.alloc_registered(64, label="dummy")

    client = builder.worker_queue(name="client")
    resp = builder.template(
        client, wr_write(dummy.addr, 8, dummy.addr + 8, dummy_mr.rkey),
        tag="while.resp")
    loop = RecycledLoop(builder, client.cq, name="srv")
    loop.body(wr_cas(resp.field_addr("ctrl"), client.rkey,
                     compare=0, swap=0, signaled=True),
              tag="while.cas")
    loop.restore(resp, offset=0, length=8)
    loop.restore(resp, offset=8, length=56)
    loop.rearm(client)
    loop.build()
    return builder.program


def _compile_only(generator) -> None:
    """Advance ``MovMachine.execute`` to its first yield: the ops are
    compiled and linked, but the completion wait never runs."""
    next(generator)


def _build_mov_machine() -> ChainProgram:
    """One of each Table 7 addressing mode through the mov machine."""
    world = _Loopback()
    machine = MovMachine(world.ctx, name="mov")
    cell = machine.alloc_ram(8)
    _compile_only(machine.execute([
        MovImm(0, cell),
        MovImm(1, 7),
        MovStore(0, 1),     # [r0] = r1
        MovLoad(2, 0),      # r2 = [r0]
        AddConst(2, 5),
        AddReg(2, 1),       # r2 += r1
    ]))
    return machine.program


def _build_turing_step() -> ChainProgram:
    """One Turing-machine step: eleven mov ops on the NIC."""
    world = _Loopback()
    machine = NicTuringMachine(world.ctx, BINARY_INCREMENT,
                               tape_cells=16, name="tm")
    machine.load_tape(["1", "0", "1"])
    _compile_only(machine.machine.execute(machine.step_ops()))
    return machine.machine.program


def _build_hash(parallel: bool) -> ChainProgram:
    """The Fig 9 hash-get offload (sequential or parallel probing)."""
    sim = Simulator()
    server_mem = HostMemory(name="srv", size=64 * 1024 * 1024)
    client_mem = HostMemory(name="cli")
    server_nic = RNIC(sim, server_mem, name="snic")
    client_nic = RNIC(sim, client_mem, name="cnic")
    Fabric(sim).connect(server_nic, client_nic)
    server_pd = ProtectionDomain(server_mem, name="spd")
    client_pd = ProtectionDomain(client_mem, name="cpd")
    ctx = RednContext(server_nic, server_pd, owner="lint-hash")

    slab_alloc = ctx.alloc(8 * 1024 * 1024, label="slab")
    table_alloc = ctx.alloc(256 * BUCKET_SIZE, label="table")
    data_mr = server_pd.register(slab_alloc)
    table_mr = server_pd.register(table_alloc)
    slab = SlabStore(server_mem, slab_alloc)
    table = CuckooTable(server_mem, table_alloc, 256, slab)

    conn = OffloadConnection(ctx, client_nic, client_pd,
                             num_lanes=2 if parallel else 1, name="kv")
    offload = HashGetOffload(ctx, table, table_mr, conn,
                             parallel=parallel, buckets=2)
    offload.post_instances(2)
    return offload.builder.program


def _build_list(use_break: bool) -> ChainProgram:
    """The Fig 12 list traversal (plain or early-break variant)."""
    sim = Simulator()
    server_mem = HostMemory(name="srv", size=64 * 1024 * 1024)
    client_mem = HostMemory(name="cli")
    server_nic = RNIC(sim, server_mem, name="snic")
    client_nic = RNIC(sim, client_mem, name="cnic")
    Fabric(sim).connect(server_nic, client_nic)
    server_pd = ProtectionDomain(server_mem)
    client_pd = ProtectionDomain(client_mem)
    ctx = RednContext(server_nic, server_pd, owner="lint-list")

    slab_alloc = ctx.alloc(4 * 1024 * 1024, label="slab")
    node_alloc = ctx.alloc(64 * 1024, label="nodes")
    data_mr = server_pd.register(node_alloc)
    slab = SlabStore(server_mem, slab_alloc)
    linked = LinkedList(server_mem, node_alloc, slab)
    for key in (11, 22, 33, 44):
        linked.append(key, b"v")

    conn = OffloadConnection(ctx, client_nic, client_pd, name="lst")
    offload = ListTraversalOffload(ctx, linked, data_mr, conn,
                                   max_nodes=4, use_break=use_break)
    offload.post_instances(2)
    return offload.builder.program


def _build_recycled_get() -> ChainProgram:
    """The §3.4/§5.6 zero-CPU recycled hash-get server."""
    bed = Testbed(num_clients=1)
    store = MemcachedServer(bed.server)
    conn = OffloadConnection(store.ctx, bed.clients[0].nic,
                             bed.client_pd(0), name="rg",
                             **RECYCLED_CONN_KWARGS)
    offload = RecycledHashGetOffload(store.ctx, store.table,
                                     store.table_mr, conn)
    return offload.builder.program


BUILTINS: List[Tuple[str, Callable[[], ChainProgram]]] = [
    ("if", _build_if),
    ("wide-if", _build_wide_if),
    ("recycled-while", _build_recycled_while),
    ("mov-machine", _build_mov_machine),
    ("turing-step", _build_turing_step),
    ("hash-get-seq", lambda: _build_hash(parallel=False)),
    ("hash-get-par", lambda: _build_hash(parallel=True)),
    ("list-traversal", lambda: _build_list(use_break=False)),
    ("list-traversal-break", lambda: _build_list(use_break=True)),
    ("recycled-get", _build_recycled_get),
]


def lint_program(name: str, program: ChainProgram,
                 verbose: bool = False) -> int:
    """Print the report for one program; returns its hazard count."""
    cost = chain_cost(program)
    hazards = verify(program)
    plans = plan_ordering(program)

    status = "ok" if not hazards else f"{len(hazards)} hazard(s)"
    print(f"{name:22s} {len(program.ops):4d} wrs  "
          f"{len(program.queues):2d} queues  cost {cost}  [{status}]")
    for hazard in hazards:
        where = hazard.op.wr_name if hazard.op is not None else "?"
        print(f"    HAZARD {hazard.check}: {hazard.message} ({where})")
    if verbose:
        for plan in plans:
            print(f"    queue {plan['queue']:24s} {plan['wrs']:4d} wrs  "
                  f"{plan['current']:>7s} -> {plan['recommended']:>7s}  "
                  f"{plan['reason']}"
                  + (f"  (saves ~{plan['est_saving_ns']}ns)"
                     if plan["est_saving_ns"] else ""))
    return len(hazards)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fail-on-hazard", action="store_true",
                        help="exit non-zero if any hazard is found")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print per-queue ordering plans")
    parser.add_argument("--only", metavar="NAME",
                        help="lint a single built-in program")
    args = parser.parse_args(argv)

    selected = [(name, build) for name, build in BUILTINS
                if args.only is None or name == args.only]
    if not selected:
        names = ", ".join(name for name, _ in BUILTINS)
        print(f"unknown program {args.only!r}; choose from: {names}",
              file=sys.stderr)
        return 2

    total_hazards = 0
    for name, build in selected:
        program = build()
        total_hazards += lint_program(name, program,
                                      verbose=args.verbose)

    print(f"\n{len(selected)} programs linted, "
          f"{total_hazards} hazard(s) total")
    if args.fail_on_hazard and total_hazards:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
