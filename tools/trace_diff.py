#!/usr/bin/env python
"""Diff two flight-recorder journals, reporting the first divergence.

Aligns two journals (``--journal OUT.jsonl`` dumps from the
benchmarks, or ``FlightRecorder.dump`` output) on **causal keys** —
queue + WR index, CQ + completion count — rather than wall order, so
one early perturbation does not drown the report in knock-on diffs.
Every difference is typed (``wqe_bytes`` with chain-IR field names,
``timing`` with the delta, ``missing``/``extra``, per-CQ
``cqe_count``), and the earliest one is printed together with a causal
slice of the events that fed it.

Chrome traces (``.json`` exports from the tracer) are accepted too;
they carry no slot byte images, so field-level WQE diffs degrade to
plain field compares.

Exit status: 0 when causally identical; with ``--fail-on-divergence``,
2 when any divergence was found (1 is reserved for usage/parse
errors, so CI can tell "the runs differ" from "the tool broke").
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.obs.recorder import Journal, JournalError, load_journal  # noqa: E402
from repro.obs.tracediff import (  # noqa: E402
    diff_journals,
    records_from_trace,
    render_report,
)


def _load(path: str) -> Journal:
    """A journal from a JSONL dump or a Chrome trace JSON export."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in text[:200]:
        from repro.obs.inspect import load_trace
        records = records_from_trace(load_trace(path))
        return Journal({"kind": "meta", "schema": 1,
                        "name": path, "first_seq": 0,
                        "next_seq": len(records)},
                       records, [])
    return load_journal(text if "\n" in text else [text])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("journal_a", help="baseline journal (run A)")
    parser.add_argument("journal_b", help="candidate journal (run B)")
    parser.add_argument("--slice", type=int, default=8, metavar="N",
                        help="causal-slice depth for the first "
                             "divergence (default 8, 0 disables)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full machine-readable report")
    parser.add_argument("--fail-on-divergence", action="store_true",
                        help="exit 2 if the journals diverge")
    args = parser.parse_args(argv)

    try:
        journal_a = _load(args.journal_a)
        journal_b = _load(args.journal_b)
    except (OSError, JournalError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    report = diff_journals(journal_a, journal_b)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_report(report, journal_a, slice_depth=args.slice))

    if args.fail_on_divergence and not report.identical:
        print(f"\nFAIL: {len(report.divergences)} divergence(s) "
              f"between {args.journal_a} and {args.journal_b}",
              file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
