#!/usr/bin/env python
"""bench_history: track benchmark results across commits.

Appends one entry per run to ``BENCH_history.json`` — the git short
sha, a timestamp, the perf_smoke simulator speeds (events/s per
workload) and any per-figure metrics handed over by the benchmark
suite (``pytest benchmarks/ --history``) — and prints the trajectory
as a table, so a perf regression can be walked back to the commit that
introduced it without re-running old checkouts::

    PYTHONPATH=src python tools/bench_history.py --append   # measure + record
    PYTHONPATH=src python tools/bench_history.py            # show trajectory

The file is an append-only JSON document (``{"schema": 1, "runs":
[...]}``); entries from the same sha accumulate rather than replace,
so re-runs on one commit show spread.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
for _path in (str(SRC), str(REPO_ROOT / "tools")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

__all__ = ["DEFAULT_PATH", "append_entry", "git_sha", "load_history",
           "render_history"]

DEFAULT_PATH = "BENCH_history.json"
HISTORY_SCHEMA = 1


def git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10,
            check=True).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def load_history(path=DEFAULT_PATH) -> dict:
    path = Path(path)
    if not path.exists():
        return {"schema": HISTORY_SCHEMA, "runs": []}
    history = json.loads(path.read_text())
    if history.get("schema") != HISTORY_SCHEMA:
        raise ValueError(f"{path}: unsupported history schema "
                         f"{history.get('schema')!r}")
    return history


def append_entry(path=DEFAULT_PATH, events_per_sec=None, figs=None,
                 p99_ns=None, sha=None, when=None) -> dict:
    """Record one run; returns the appended entry.

    ``p99_ns`` maps workload name -> p99 request latency in simulated
    ns (from the telemetry plane, see ``perf_smoke.measure_tails``).
    Entries without it stay schema-1 compatible and render as "-".
    """
    history = load_history(path)
    entry = {
        "sha": sha or git_sha(),
        "when": when or time.strftime("%Y-%m-%dT%H:%M:%S"),
        "events_per_sec": dict(sorted((events_per_sec or {}).items())),
        "figs": {name: dict(sorted(metrics.items()))
                 for name, metrics in sorted((figs or {}).items())},
    }
    if p99_ns:
        entry["p99_ns"] = dict(sorted(p99_ns.items()))
    history["runs"].append(entry)
    Path(path).write_text(
        json.dumps(history, indent=2, sort_keys=True) + "\n")
    return entry


def render_history(history: dict, last: int = 0) -> str:
    from repro.bench import render_table

    runs = history.get("runs", [])
    if last:
        runs = runs[-last:]
    if not runs:
        return "no recorded runs"
    workloads = sorted({name for run in runs
                        for name in run.get("events_per_sec", {})})
    tail_workloads = sorted({name for run in runs
                             for name in run.get("p99_ns", {})})
    fig_metrics = sorted({
        f"{fig}.{metric}" for run in runs
        for fig, metrics in run.get("figs", {}).items()
        for metric in metrics
        if isinstance(metrics.get(metric), (int, float))})
    headers = ["sha", "when"] + [f"{w} ev/s" for w in workloads] \
        + [f"{w} p99" for w in tail_workloads] + fig_metrics
    rows = []
    for run in runs:
        row = [run.get("sha", "?"), run.get("when", "?")]
        for workload in workloads:
            rate = run.get("events_per_sec", {}).get(workload)
            row.append(f"{rate:,d}" if isinstance(rate, int) else "-")
        for workload in tail_workloads:
            tail = run.get("p99_ns", {}).get(workload)
            row.append(f"{tail:,d}ns" if isinstance(tail, int) else "-")
        for column in fig_metrics:
            fig, _, metric = column.partition(".")
            value = run.get("figs", {}).get(fig, {}).get(metric)
            row.append(f"{value:g}" if isinstance(value, (int, float))
                       else "-")
        rows.append(row)
    return render_table(headers, rows,
                        title=f"benchmark trajectory ({len(runs)} runs)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--history", default=DEFAULT_PATH,
                        metavar="FILE",
                        help=f"history file (default {DEFAULT_PATH})")
    parser.add_argument("--append", action="store_true",
                        help="run the perf_smoke workloads and record "
                             "their simulator speeds")
    parser.add_argument("--reps", type=int, default=3,
                        help="perf_smoke reps per workload (default 3)")
    parser.add_argument("--no-triage", action="store_true",
                        help="with --append: skip the incident-triage "
                             "fault scenarios (storm/failover/clean)")
    parser.add_argument("--last", type=int, default=0, metavar="N",
                        help="only show the last N runs")
    parser.add_argument("--json", action="store_true",
                        help="dump the (possibly filtered) history as "
                             "JSON instead of a table")
    args = parser.parse_args(argv)

    if args.append:
        from perf_smoke import ALL_WORKLOADS, measure_tails, run_workload
        rates = {}
        figs = {}
        for name in sorted(ALL_WORKLOADS):
            result = run_workload(name, reps=args.reps)
            rates[name] = result["events_per_sec"]
            line = f"{name}: {result['events_per_sec']:,d} events/s"
            if "speedup" in result:
                # Dual-drive workloads also track their sharded-vs-serial
                # win as a first-class trajectory column.
                rates[f"{name}_serial"] = \
                    result["serial_events_per_sec"]
                line += f" ({result['speedup']:.2f}x over serial)"
            if "aggregate_mops" in result:
                # The fleet workload's simulated serving throughput —
                # a fig metric, not a simulator speed.
                figs[name] = {"aggregate_mops": result["aggregate_mops"]}
                line += f" | {result['aggregate_mops']:.3f} Mops"
            print(line, file=sys.stderr)
        tails = measure_tails()
        for name, tail in sorted(tails.items()):
            print(f"{name}: p99 {tail:,d}ns", file=sys.stderr)
        if not args.no_triage:
            # Triage trajectory: incidents raised and mean detection
            # latency per fault scenario, so a detector regression
            # (missed storm, false positive on clean) shows up as a
            # column flip in the history table.
            from repro.bench.faults import SCENARIOS, run_triage
            for scenario in SCENARIOS:
                verdict = run_triage(scenario, capture=False).verdict
                metrics = {"incidents": verdict["incidents"]}
                line = (f"triage_{scenario}: "
                        f"{verdict['incidents']} incident(s)")
                if verdict["mean_detection_ns"] is not None:
                    metrics["detect_ns"] = verdict["mean_detection_ns"]
                    line += (f", detected after "
                             f"{verdict['mean_detection_ns']:,.0f}ns")
                figs[f"triage_{scenario}"] = metrics
                print(line, file=sys.stderr)
        entry = append_entry(args.history, events_per_sec=rates,
                             figs=figs, p99_ns=tails)
        print(f"recorded {entry['sha']} in {args.history}",
              file=sys.stderr)

    history = load_history(args.history)
    if args.json:
        runs = history["runs"][-args.last:] if args.last \
            else history["runs"]
        print(json.dumps({"schema": history["schema"], "runs": runs},
                         indent=2, sort_keys=True))
    else:
        print(render_history(history, last=args.last))
    return 0


if __name__ == "__main__":
    sys.exit(main())
