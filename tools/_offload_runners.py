"""Shared builders for the five built-in RedN offload scenarios.

``tools/latency_profile.py`` profiles these under a tracer;
``tests/test_recorder.py`` replays them under a flight recorder; both
must drive byte-identical simulations, so the testbed construction and
call-driving live here once. Each runner accepts an ``instrument(bed,
label)`` callback invoked right after the testbed exists and before
any offload state is built — attach a Tracer, a FlightRecorder, or
nothing — and stores its return value under ``"instrument"`` in the
result dict.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

__all__ = ["CALL_GAP_NS", "DRAIN_NS", "OFFLOADS", "run_offload"]

CALL_GAP_NS = 50_000
DRAIN_NS = 500_000


def _drive_calls(bed, client, offload, keys, per_call_post: bool = False):
    def scenario():
        for index, key in enumerate(keys):
            if per_call_post:
                # Early-break chains tear their instance down after the
                # hit (fig13's drive pattern): post one per call.
                offload.post_instances(1)
            result = yield from client.call(offload.payload_for(key),
                                            timeout_ns=60_000_000)
            assert result.ok, f"offload call for key {key:#x} failed"
            if per_call_post:
                offload.finish_request(index)
            yield bed.sim.timeout(CALL_GAP_NS)
        # Let straggling chain ops (unconsumed instances, CQE DMAs)
        # finish so execution counts are settled before profiling.
        yield bed.sim.timeout(DRAIN_NS)
    bed.run(scenario())


def _run_hash(calls: int, parallel: bool, instrument=None):
    from repro.apps import MemcachedServer
    from repro.bench import Testbed
    from repro.redn.offload import OffloadClient

    bed = Testbed(num_clients=1)
    label = "hash-lookup-par" if parallel else "hash-lookup"
    obs = instrument(bed, label) if instrument else None
    store = MemcachedServer(bed.server)
    keys = [0x30 + index for index in range(calls)]
    for key in keys:
        store.set(key, f"value-{key:#x}".encode(), force_bucket=0)
    offload, conn = store.attach_get_offload(
        bed.clients[0].nic, bed.client_pd(0), parallel=parallel,
        max_instances=calls + 2)
    offload.post_instances(calls)
    client = OffloadClient(conn, bed.client_verbs(0))
    _drive_calls(bed, client, offload, keys)
    return {"bed": bed, "instrument": obs,
            "program": offload.builder.program, "relation": "exact"}


def _run_list(calls: int, use_break: bool, instrument=None):
    from repro.bench import Testbed
    from repro.datastructs import LinkedList, SlabStore
    from repro.offloads.list_traversal import ListTraversalOffload
    from repro.redn import RednContext
    from repro.redn.offload import OffloadClient, OffloadConnection

    list_size = 8
    bed = Testbed(num_clients=1)
    label = "list-traversal-break" if use_break else "list-traversal"
    obs = instrument(bed, label) if instrument else None
    proc = bed.server.spawn_process("list-server")
    pd = proc.create_pd()
    slab_alloc = proc.alloc(4 * 1024 * 1024, label="slab")
    node_alloc = proc.alloc(64 * 1024, label="nodes")
    data_mr = pd.register(node_alloc)
    pd.register(slab_alloc)
    slab = SlabStore(bed.server.memory, slab_alloc)
    linked = LinkedList(bed.server.memory, node_alloc, slab)
    keys = [0x100 + index for index in range(list_size)]
    for key in keys:
        linked.append(key, bytes([key & 0xFF]) * 64)
    ctx = RednContext(bed.server.nic, pd, process=proc)
    conn = OffloadConnection(ctx, bed.clients[0].nic, bed.client_pd(0),
                             name="lp")
    offload = ListTraversalOffload(ctx, linked, data_mr, conn,
                                   max_nodes=list_size,
                                   use_break=use_break)
    if not use_break:
        offload.post_instances(calls)
    client = OffloadClient(conn, bed.client_verbs(0))
    call_keys = [keys[index % list_size] for index in range(calls)]
    _drive_calls(bed, client, offload, call_keys,
                 per_call_post=use_break)
    return {"bed": bed, "instrument": obs,
            "program": offload.builder.program,
            "relation": "at-most" if use_break else "exact"}


def _run_recycled(calls: int, instrument=None):
    from repro.apps import MemcachedServer
    from repro.bench import Testbed
    from repro.offloads.recycled_get import (
        RECYCLED_CONN_KWARGS,
        RecycledHashGetOffload,
    )
    from repro.redn.offload import OffloadClient, OffloadConnection

    bed = Testbed(num_clients=1)
    obs = instrument(bed, "recycled-get") if instrument else None
    store = MemcachedServer(bed.server)
    keys = [0x50 + index for index in range(calls)]
    for key in keys:
        store.set(key, f"value-{key:#x}".encode(), force_bucket=0)
    conn = OffloadConnection(store.ctx, bed.clients[0].nic,
                             bed.client_pd(0), name="rg",
                             **RECYCLED_CONN_KWARGS)
    offload = RecycledHashGetOffload(store.ctx, store.table,
                                     store.table_mr, conn)
    offload.start()
    client = OffloadClient(conn, bed.client_verbs(0))
    _drive_calls(bed, client, offload, keys)
    return {"bed": bed, "instrument": obs,
            "program": offload.builder.program, "relation": "recycled",
            "offload": offload}


OFFLOADS = {
    "hash-lookup":
        lambda calls, instrument=None:
            _run_hash(calls, parallel=False, instrument=instrument),
    "hash-lookup-par":
        lambda calls, instrument=None:
            _run_hash(calls, parallel=True, instrument=instrument),
    "list-traversal":
        lambda calls, instrument=None:
            _run_list(calls, use_break=False, instrument=instrument),
    "list-traversal-break":
        lambda calls, instrument=None:
            _run_list(calls, use_break=True, instrument=instrument),
    "recycled-get": _run_recycled,
}


def run_offload(name: str, calls: int, instrument=None):
    """Build and drive one named offload scenario (see ``OFFLOADS``)."""
    return OFFLOADS[name](calls, instrument=instrument)
