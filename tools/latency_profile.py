#!/usr/bin/env python3
"""latency_profile: causal critical-path latency breakdowns.

Two input modes:

* **A recorded trace** — profile a Chrome trace-event JSON written by
  ``Tracer.export_chrome`` (or a benchmark's ``--trace-out``)::

      PYTHONPATH=src python tools/latency_profile.py TRACE.json --top 5

* **A built-in offload** — build a fresh simulated testbed, run one of
  the RedN offloads under a tracer, and profile the live events::

      PYTHONPATH=src python tools/latency_profile.py \
          --offload hash-lookup --calls 8 --breakdown --flame out.folded

Per request (each ``call:`` span) every simulated nanosecond is
attributed to exactly one phase — ``queueing``, ``fetch``,
``wait_blocked``, ``pu_exec``, ``dma``, ``wire``, ``cqe`` — so the
per-phase columns always sum to the end-to-end latency. ``--path``
additionally prints the reconstructed causal critical path.

``--fail-if-phase phase>ns`` (repeatable) exits non-zero when any
request spends more than ``ns`` in ``phase`` — a per-component
latency regression gate for CI. ``--selfcheck`` verifies the
profiler's own invariants: exact phase sums, and measured
WAIT/ENABLE execution counts consistent with the static
``chain_cost`` E-tally of the offload's chain program.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.obs import PHASES  # noqa: E402

CALL_GAP_NS = 50_000
DRAIN_NS = 500_000


# -- offload runners ----------------------------------------------------------


def _drive_calls(bed, client, offload, keys, per_call_post: bool = False):
    def scenario():
        for index, key in enumerate(keys):
            if per_call_post:
                # Early-break chains tear their instance down after the
                # hit (fig13's drive pattern): post one per call.
                offload.post_instances(1)
            result = yield from client.call(offload.payload_for(key),
                                            timeout_ns=60_000_000)
            assert result.ok, f"offload call for key {key:#x} failed"
            if per_call_post:
                offload.finish_request(index)
            yield bed.sim.timeout(CALL_GAP_NS)
        # Let straggling chain ops (unconsumed instances, CQE DMAs)
        # finish so execution counts are settled before profiling.
        yield bed.sim.timeout(DRAIN_NS)
    bed.run(scenario())


def _run_hash(calls: int, parallel: bool):
    from repro.apps import MemcachedServer
    from repro.bench import Testbed
    from repro.obs import Tracer
    from repro.redn.offload import OffloadClient

    bed = Testbed(num_clients=1)
    tracer = Tracer(bed.sim, name="hash-lookup")
    store = MemcachedServer(bed.server)
    keys = [0x30 + index for index in range(calls)]
    for key in keys:
        store.set(key, f"value-{key:#x}".encode(), force_bucket=0)
    offload, conn = store.attach_get_offload(
        bed.clients[0].nic, bed.client_pd(0), parallel=parallel,
        max_instances=calls + 2)
    offload.post_instances(calls)
    client = OffloadClient(conn, bed.client_verbs(0))
    _drive_calls(bed, client, offload, keys)
    return {"bed": bed, "tracer": tracer,
            "program": offload.builder.program, "relation": "exact"}


def _run_list(calls: int, use_break: bool):
    from repro.bench import Testbed
    from repro.datastructs import LinkedList, SlabStore
    from repro.obs import Tracer
    from repro.offloads.list_traversal import ListTraversalOffload
    from repro.redn import RednContext
    from repro.redn.offload import OffloadClient, OffloadConnection

    list_size = 8
    bed = Testbed(num_clients=1)
    tracer = Tracer(bed.sim, name="list-traversal")
    proc = bed.server.spawn_process("list-server")
    pd = proc.create_pd()
    slab_alloc = proc.alloc(4 * 1024 * 1024, label="slab")
    node_alloc = proc.alloc(64 * 1024, label="nodes")
    data_mr = pd.register(node_alloc)
    pd.register(slab_alloc)
    slab = SlabStore(bed.server.memory, slab_alloc)
    linked = LinkedList(bed.server.memory, node_alloc, slab)
    keys = [0x100 + index for index in range(list_size)]
    for key in keys:
        linked.append(key, bytes([key & 0xFF]) * 64)
    ctx = RednContext(bed.server.nic, pd, process=proc)
    conn = OffloadConnection(ctx, bed.clients[0].nic, bed.client_pd(0),
                             name="lp")
    offload = ListTraversalOffload(ctx, linked, data_mr, conn,
                                   max_nodes=list_size,
                                   use_break=use_break)
    if not use_break:
        offload.post_instances(calls)
    client = OffloadClient(conn, bed.client_verbs(0))
    call_keys = [keys[index % list_size] for index in range(calls)]
    _drive_calls(bed, client, offload, call_keys,
                 per_call_post=use_break)
    return {"bed": bed, "tracer": tracer,
            "program": offload.builder.program,
            "relation": "at-most" if use_break else "exact"}


def _run_recycled(calls: int):
    from repro.apps import MemcachedServer
    from repro.bench import Testbed
    from repro.obs import Tracer
    from repro.offloads.recycled_get import (
        RECYCLED_CONN_KWARGS,
        RecycledHashGetOffload,
    )
    from repro.redn.offload import OffloadClient, OffloadConnection

    bed = Testbed(num_clients=1)
    tracer = Tracer(bed.sim, name="recycled-get")
    store = MemcachedServer(bed.server)
    keys = [0x50 + index for index in range(calls)]
    for key in keys:
        store.set(key, f"value-{key:#x}".encode(), force_bucket=0)
    conn = OffloadConnection(store.ctx, bed.clients[0].nic,
                             bed.client_pd(0), name="rg",
                             **RECYCLED_CONN_KWARGS)
    offload = RecycledHashGetOffload(store.ctx, store.table,
                                     store.table_mr, conn)
    offload.start()
    client = OffloadClient(conn, bed.client_verbs(0))
    _drive_calls(bed, client, offload, keys)
    return {"bed": bed, "tracer": tracer,
            "program": offload.builder.program, "relation": "recycled",
            "offload": offload}


OFFLOADS = {
    "hash-lookup": lambda calls: _run_hash(calls, parallel=False),
    "hash-lookup-par": lambda calls: _run_hash(calls, parallel=True),
    "list-traversal": lambda calls: _run_list(calls, use_break=False),
    "list-traversal-break":
        lambda calls: _run_list(calls, use_break=True),
    "recycled-get": _run_recycled,
}


# -- selfcheck ----------------------------------------------------------------


def selfcheck(profile, run) -> list:
    """Profiler invariants; returns a list of failure strings.

    * every request's phase durations sum exactly to its end-to-end
      latency (no unattributed gaps, no double counting);
    * measured ordering-verb executions (completed WAIT spans + ENABLE
      applications) are consistent with the static ``chain_cost``
      E-tally of the chain program: equal for run-to-completion
      offloads, bounded by it for early-``break`` variants, and a
      whole multiple of the per-lap tally for the recycled ring.
    """
    from repro.redn.passes import chain_cost

    failures = []
    if not profile.requests:
        failures.append("no requests found in trace")
    for request in profile.requests:
        phase_sum = sum(request.phases.values())
        if phase_sum != request.total_ns:
            failures.append(
                f"{request.label}@{request.start}: phases sum to "
                f"{phase_sum}ns, end-to-end is {request.total_ns}ns")
    static = chain_cost(run["program"])
    measured = profile.counts["E"]
    relation = run["relation"]
    if relation == "exact" and measured != static.ordering:
        failures.append(
            f"measured E={measured} != static chain_cost "
            f"E={static.ordering}")
    elif relation == "at-most" and not 0 < measured <= static.ordering:
        failures.append(
            f"measured E={measured} not in (0, static "
            f"E={static.ordering}] for early-break chain")
    elif relation == "recycled":
        laps = run["offload"].laps
        if measured != laps * static.ordering:
            failures.append(
                f"measured E={measured} != {laps} laps x per-lap "
                f"static E={static.ordering}")
    return failures


# -- CLI ----------------------------------------------------------------------


def _parse_phase_bound(text: str):
    phase, sep, bound = text.partition(">")
    if not sep or phase not in PHASES:
        raise argparse.ArgumentTypeError(
            f"expected PHASE>NS with PHASE in {', '.join(PHASES)}: "
            f"{text!r}")
    try:
        return phase, int(bound)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad bound in {text!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", nargs="?",
                        help="Chrome trace JSON to profile")
    parser.add_argument("--offload", choices=sorted(OFFLOADS),
                        help="run a built-in offload and profile it")
    parser.add_argument("--calls", type=int, default=8,
                        help="offload calls to issue (default 8)")
    parser.add_argument("--breakdown", action="store_true",
                        help="print the per-request phase table "
                             "(default when nothing else is selected)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full profile as JSON")
    parser.add_argument("--flame", metavar="OUT.folded",
                        help="write flamegraph folded stacks")
    parser.add_argument("--top", type=int, metavar="N",
                        help="only show the N slowest requests")
    parser.add_argument("--path", action="store_true",
                        help="print each request's causal critical path")
    parser.add_argument("--fail-if-phase", metavar="PHASE>NS",
                        type=_parse_phase_bound, action="append",
                        default=[],
                        help="exit 1 if any request exceeds NS in PHASE "
                             "(repeatable)")
    parser.add_argument("--selfcheck", action="store_true",
                        help="verify exact phase sums and chain_cost "
                             "E-count consistency")
    parser.add_argument("--trace-out", metavar="OUT.json",
                        help="also export the Chrome trace "
                             "(--offload mode only)")
    args = parser.parse_args(argv)

    if bool(args.trace) == bool(args.offload):
        parser.error("give exactly one of TRACE.json or --offload")

    from repro.obs import profile_trace, profile_tracer

    run = None
    if args.offload:
        run = OFFLOADS[args.offload](args.calls)
        tracer = run["tracer"]
        if args.trace_out:
            count = tracer.export_chrome(args.trace_out)
            print(f"wrote {count} events to {args.trace_out}",
                  file=sys.stderr)
        profile = profile_tracer(tracer)
        profile.record_metrics(run["bed"].sim.metrics)
    else:
        if args.trace_out:
            parser.error("--trace-out needs --offload")
        if args.selfcheck:
            parser.error("--selfcheck needs --offload (it compares "
                         "against the built chain program)")
        profile = profile_trace(args.trace)

    status = 0
    if args.selfcheck:
        failures = selfcheck(profile, run)
        for failure in failures:
            print(f"SELFCHECK FAIL: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(f"selfcheck ok: {len(profile.requests)} request(s), "
                  f"exact phase sums, E={profile.counts['E']}",
                  file=sys.stderr)

    for phase, bound in args.fail_if_phase:
        worst = max((request.phases[phase]
                     for request in profile.requests), default=0)
        if worst > bound:
            print(f"FAIL: phase {phase} reached {worst}ns "
                  f"(bound {bound}ns)", file=sys.stderr)
            status = 1

    if args.flame:
        lines = profile.folded_lines()
        Path(args.flame).write_text("\n".join(lines) + "\n")
        print(f"wrote {len(lines)} folded stacks to {args.flame}",
              file=sys.stderr)

    if args.json:
        print(profile.to_json())
    elif args.breakdown or not (args.flame or args.fail_if_phase
                                or args.selfcheck):
        print(profile.render(top=args.top, show_path=args.path))
    elif args.path:
        print(profile.render(top=args.top, show_path=True))
    return status


if __name__ == "__main__":
    sys.exit(main())
