#!/usr/bin/env python3
"""latency_profile: causal critical-path latency breakdowns.

Two input modes:

* **A recorded trace** — profile a Chrome trace-event JSON written by
  ``Tracer.export_chrome`` (or a benchmark's ``--trace-out``)::

      PYTHONPATH=src python tools/latency_profile.py TRACE.json --top 5

* **A built-in offload** — build a fresh simulated testbed, run one of
  the RedN offloads under a tracer, and profile the live events::

      PYTHONPATH=src python tools/latency_profile.py \
          --offload hash-lookup --calls 8 --breakdown --flame out.folded

Per request (each ``call:`` span) every simulated nanosecond is
attributed to exactly one phase — ``queueing``, ``fetch``,
``wait_blocked``, ``pu_exec``, ``dma``, ``wire``, ``cqe`` — so the
per-phase columns always sum to the end-to-end latency. ``--path``
additionally prints the reconstructed causal critical path.

``--fail-if-phase phase>ns`` (repeatable) exits non-zero when any
request spends more than ``ns`` in ``phase`` — a per-component
latency regression gate for CI. ``--selfcheck`` verifies the
profiler's own invariants: exact phase sums, and measured
WAIT/ENABLE execution counts consistent with the static
``chain_cost`` E-tally of the offload's chain program.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.obs import PHASES  # noqa: E402

# The five offload scenarios are shared with the flight-recorder
# replay tests; see tools/_offload_runners.py.
TOOLS = REPO_ROOT / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

from _offload_runners import OFFLOADS, run_offload  # noqa: E402


# -- selfcheck ----------------------------------------------------------------


def selfcheck(profile, run) -> list:
    """Profiler invariants; returns a list of failure strings.

    * every request's phase durations sum exactly to its end-to-end
      latency (no unattributed gaps, no double counting);
    * measured ordering-verb executions (completed WAIT spans + ENABLE
      applications) are consistent with the static ``chain_cost``
      E-tally of the chain program: equal for run-to-completion
      offloads, bounded by it for early-``break`` variants, and a
      whole multiple of the per-lap tally for the recycled ring.
    """
    from repro.redn.passes import chain_cost

    failures = []
    if not profile.requests:
        failures.append("no requests found in trace")
    for request in profile.requests:
        phase_sum = sum(request.phases.values())
        if phase_sum != request.total_ns:
            failures.append(
                f"{request.label}@{request.start}: phases sum to "
                f"{phase_sum}ns, end-to-end is {request.total_ns}ns")
    static = chain_cost(run["program"])
    measured = profile.counts["E"]
    relation = run["relation"]
    if relation == "exact" and measured != static.ordering:
        failures.append(
            f"measured E={measured} != static chain_cost "
            f"E={static.ordering}")
    elif relation == "at-most" and not 0 < measured <= static.ordering:
        failures.append(
            f"measured E={measured} not in (0, static "
            f"E={static.ordering}] for early-break chain")
    elif relation == "recycled":
        laps = run["offload"].laps
        if measured != laps * static.ordering:
            failures.append(
                f"measured E={measured} != {laps} laps x per-lap "
                f"static E={static.ordering}")
    return failures


# -- CLI ----------------------------------------------------------------------


def _parse_phase_bound(text: str):
    phase, sep, bound = text.partition(">")
    if not sep or phase not in PHASES:
        raise argparse.ArgumentTypeError(
            f"expected PHASE>NS with PHASE in {', '.join(PHASES)}: "
            f"{text!r}")
    try:
        return phase, int(bound)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad bound in {text!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", nargs="?",
                        help="Chrome trace JSON to profile")
    parser.add_argument("--offload", choices=sorted(OFFLOADS),
                        help="run a built-in offload and profile it")
    parser.add_argument("--calls", type=int, default=8,
                        help="offload calls to issue (default 8)")
    parser.add_argument("--breakdown", action="store_true",
                        help="print the per-request phase table "
                             "(default when nothing else is selected)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full profile as JSON")
    parser.add_argument("--flame", metavar="OUT.folded",
                        help="write flamegraph folded stacks")
    parser.add_argument("--top", type=int, metavar="N",
                        help="only show the N slowest requests")
    parser.add_argument("--path", action="store_true",
                        help="print each request's causal critical path")
    parser.add_argument("--fail-if-phase", metavar="PHASE>NS",
                        type=_parse_phase_bound, action="append",
                        default=[],
                        help="exit 1 if any request exceeds NS in PHASE "
                             "(repeatable)")
    parser.add_argument("--selfcheck", action="store_true",
                        help="verify exact phase sums and chain_cost "
                             "E-count consistency")
    parser.add_argument("--trace-out", metavar="OUT.json",
                        help="also export the Chrome trace "
                             "(--offload mode only)")
    args = parser.parse_args(argv)

    if bool(args.trace) == bool(args.offload):
        parser.error("give exactly one of TRACE.json or --offload")

    from repro.obs import profile_trace, profile_tracer

    run = None
    if args.offload:
        from repro.obs import Tracer
        run = run_offload(
            args.offload, args.calls,
            instrument=lambda bed, label: Tracer(bed.sim, name=label))
        tracer = run["instrument"]
        if args.trace_out:
            count = tracer.export_chrome(args.trace_out)
            print(f"wrote {count} events to {args.trace_out}",
                  file=sys.stderr)
        profile = profile_tracer(tracer)
        profile.record_metrics(run["bed"].sim.metrics)
    else:
        if args.trace_out:
            parser.error("--trace-out needs --offload")
        if args.selfcheck:
            parser.error("--selfcheck needs --offload (it compares "
                         "against the built chain program)")
        profile = profile_trace(args.trace)

    status = 0
    if args.selfcheck:
        failures = selfcheck(profile, run)
        for failure in failures:
            print(f"SELFCHECK FAIL: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(f"selfcheck ok: {len(profile.requests)} request(s), "
                  f"exact phase sums, E={profile.counts['E']}",
                  file=sys.stderr)

    for phase, bound in args.fail_if_phase:
        worst = max((request.phases[phase]
                     for request in profile.requests), default=0)
        if worst > bound:
            print(f"FAIL: phase {phase} reached {worst}ns "
                  f"(bound {bound}ns)", file=sys.stderr)
            status = 1

    if args.flame:
        lines = profile.folded_lines()
        Path(args.flame).write_text("\n".join(lines) + "\n")
        print(f"wrote {len(lines)} folded stacks to {args.flame}",
              file=sys.stderr)

    if args.json:
        print(profile.to_json())
    elif args.breakdown or not (args.flame or args.fail_if_phase
                                or args.selfcheck):
        print(profile.render(top=args.top, show_path=args.path))
    elif args.path:
        print(profile.render(top=args.top, show_path=True))
    return status


if __name__ == "__main__":
    sys.exit(main())
