#!/usr/bin/env python3
"""fleet_top: top-style per-bed view of a cluster telemetry stream.

Drives the ``cluster_simspeed`` scenario — or, with ``--fleet``, the
sharded KV fleet (``fleet_simspeed``) — with the fleet telemetry plane
attached (or reads a previously exported stream) and renders a per-bed
table — requests, tail latency, PU utilization, queue peaks, hot keys
— plus optional SLO burn-rate alerting::

    PYTHONPATH=src python tools/fleet_top.py                    # table
    PYTHONPATH=src python tools/fleet_top.py --fleet            # KV fleet
    PYTHONPATH=src python tools/fleet_top.py --jsonl out.jsonl  # raw stream
    PYTHONPATH=src python tools/fleet_top.py --json -           # summary
    PYTHONPATH=src python tools/fleet_top.py \\
        --slo ci/cluster_slo.json --fail-on-burn                # CI gate
    PYTHONPATH=src python tools/fleet_top.py --input run.jsonl  # offline

The stream is deterministic — byte-identical between sharded and
serial drives of the same scenario (``--serial`` to check) — so every
export is diffable run to run.

Exit codes: 0 ok; 1 SLO burn alert fired under ``--fail-on-burn``;
2 scenario/input error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
for path in (str(SRC), str(REPO_ROOT / "tools")):
    if path not in sys.path:
        sys.path.insert(0, path)


def load_records(path: str):
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def run_cluster(args):
    from repro.bench.cluster import build_cluster

    # telemetry_path="" suppresses the REPRO_TELEMETRY env fallback —
    # this tool attaches its own fleet with the requested window.
    scenario = build_cluster(num_beds=args.beds,
                             clients_per_bed=args.clients,
                             requests_per_client=args.requests,
                             telemetry_path="")
    fleet = scenario.attach_telemetry(window_ns=args.window)
    fingerprint, measures = scenario.run(serial=args.serial)
    return fleet.records, fingerprint, measures


def run_fleet(args):
    from repro.bench.fleet import build_fleet

    # --beds are shards here; --clients/--requests keep their meaning.
    scenario = build_fleet(num_shards=args.beds,
                           clients_per_shard=args.clients,
                           requests_per_client=args.requests,
                           telemetry_path="", exemplars=0)
    fleet = scenario.attach_telemetry(window_ns=args.window,
                                      exemplars=args.exemplars)
    fingerprint, measures = scenario.run(serial=args.serial)
    return fleet.records, fingerprint, measures


def render_fleet(records, window_ns) -> str:
    from repro.bench import render_table
    from repro.obs.telemetry import summarize_records

    summaries = summarize_records(records)
    headers = ["bed", "req", "req/us", "p50", "p99", "p999", "pw p99",
               "util%", "sq^", "cq^", "wrs", "dma KB", "hot key"]
    rows = []
    for bed in sorted(summaries):
        s = summaries[bed]
        span_ns = (s["last_window"] - s["first_window"] + 1) * window_ns
        rate = s["requests"] / span_ns * 1000 if span_ns else 0.0
        latency = s["latency"] or {}
        pool_wait = s.get("pool_wait") or {}
        hot = next(iter(s["keys"].items()), None)
        rows.append([
            bed, str(s["requests"]), f"{rate:.2f}",
            str(latency.get("p50", "-")), str(latency.get("p99", "-")),
            str(latency.get("p999", "-")),
            str(pool_wait.get("p99", "-")),
            f"{s['util'] * 100:.1f}",
            str(s["sq_depth_max"]), str(s["cq_depth_max"]),
            str(s["wrs"]), f"{s['dma_bytes'] / 1024:.0f}",
            f"{hot[0]}x{hot[1]}" if hot else "-",
        ])
    windows = 1 + max(r["window"] for r in records) \
        - min(r["window"] for r in records)
    return render_table(
        headers, rows,
        title=f"fleet_top — {len(summaries)} beds, {windows} windows "
              f"x {window_ns}ns")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--input", metavar="FILE.jsonl",
                        help="render an existing telemetry stream "
                             "instead of running the cluster")
    parser.add_argument("--fleet", action="store_true",
                        help="drive the sharded KV fleet "
                             "(fleet_simspeed) instead of the cluster; "
                             "--beds become shards")
    parser.add_argument("--beds", type=int, default=None,
                        help="cluster beds / fleet shards "
                             "(default 16 cluster, 8 fleet)")
    parser.add_argument("--clients", type=int, default=None,
                        help="clients per bed/shard "
                             "(default 1 cluster, 128 fleet)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client "
                             "(default 40 cluster, 3 fleet)")
    parser.add_argument("--serial", action="store_true",
                        help="drive the serial merge instead of the "
                             "sharded synchronizer (identical stream)")
    parser.add_argument("--window", type=int, metavar="NS",
                        help="telemetry window width in simulated ns")
    parser.add_argument("--exemplars", type=int, default=0, metavar="K",
                        help="with --fleet: keep the K slowest "
                             "requests' blame breakdowns per window "
                             "(see tools/tail_blame.py)")
    parser.add_argument("--json", metavar="FILE",
                        help="write the per-bed summary as JSON "
                             "('-' for stdout)")
    parser.add_argument("--jsonl", metavar="FILE",
                        help="write the raw window record stream as "
                             "JSONL ('-' for stdout)")
    parser.add_argument("--slo", metavar="RULES.json",
                        help="evaluate SLO burn-rate rules over the "
                             "stream")
    parser.add_argument("--fail-on-burn", action="store_true",
                        help="exit 1 if any SLO burn alert fires")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the table (exports/alerts only)")
    args = parser.parse_args(argv)
    if args.exemplars and not args.fleet:
        parser.error("--exemplars requires --fleet")

    from repro.obs.telemetry import (DEFAULT_WINDOW_NS, evaluate_slo,
                                     load_slo_rules, summarize_records)

    if args.beds is None:
        args.beds = 8 if args.fleet else 16
    if args.clients is None:
        args.clients = 128 if args.fleet else 1
    if args.requests is None:
        args.requests = 3 if args.fleet else 40

    if args.input:
        if args.window:
            parser.error("--window only applies when running a "
                         "scenario, not with --input")
        try:
            records = load_records(args.input)
        except (OSError, ValueError) as exc:
            print(f"fleet_top: cannot read {args.input}: {exc}",
                  file=sys.stderr)
            return 2
        if not records:
            print(f"fleet_top: {args.input} holds no telemetry records",
                  file=sys.stderr)
            return 2
        window_ns = records[0]["end_ns"] - records[0]["start_ns"]
    else:
        args.window = args.window or DEFAULT_WINDOW_NS
        label = "fleet" if args.fleet else "cluster"
        from repro.bench.fleet import FleetError
        try:
            runner = run_fleet if args.fleet else run_cluster
            records, fingerprint, measures = runner(args)
        except FleetError as exc:
            # Typed fleet failure: name the implicated beds and dead
            # simulated processes instead of a bare traceback.
            print(f"fleet_top: {label} run failed: {exc}",
                  file=sys.stderr)
            for bed, process in zip(exc.beds, exc.processes):
                print(f"fleet_top:   bed {bed}: {process}",
                      file=sys.stderr)
            return 2
        except Exception as exc:  # scenario misconfiguration
            print(f"fleet_top: {label} run failed: {exc}",
                  file=sys.stderr)
            return 2
        window_ns = args.window
        if not args.quiet:
            line = (f"{label}: {fingerprint['requests']} requests, "
                    f"frontier {fingerprint['frontier_ns']}ns, "
                    f"{measures['rounds']} rounds "
                    f"({'serial' if args.serial else 'sharded'})")
            if "aggregate_mops" in measures:
                line += f", {measures['aggregate_mops']:.3f} Mops"
            print(line, file=sys.stderr)

    if args.jsonl:
        text = "".join(json.dumps(record, sort_keys=True) + "\n"
                       for record in records)
        if args.jsonl == "-":
            sys.stdout.write(text)
        else:
            Path(args.jsonl).write_text(text)
            print(f"wrote {len(records)} records to {args.jsonl}",
                  file=sys.stderr)
    if args.json:
        summaries = summarize_records(records)
        text = json.dumps({"window_ns": window_ns,
                           "beds": {bed: summaries[bed]
                                    for bed in sorted(summaries)}},
                          indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            Path(args.json).write_text(text)

    if not args.quiet:
        print(render_fleet(records, window_ns))

    if args.slo:
        try:
            rules = load_slo_rules(args.slo)
        except (OSError, ValueError, TypeError) as exc:
            print(f"fleet_top: bad SLO rules {args.slo}: {exc}",
                  file=sys.stderr)
            return 2
        alerts = evaluate_slo(records, rules)
        for alert in alerts:
            print(alert.describe())
        if not alerts:
            print(f"SLO: {len(rules)} rule(s) clean over "
                  f"{len(records)} records")
        if alerts and args.fail_on_burn:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
