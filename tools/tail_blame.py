#!/usr/bin/env python3
"""tail_blame: who owns the fleet's p99 — per-(shard, queue, phase).

Drives the sharded KV fleet (``fleet_simspeed``) with tail exemplar
capture on — each telemetry window keeps the K slowest requests' full
blame breakdowns (:mod:`repro.obs.blame`) — and rolls them up into the
per-(shard, queue, phase) table that answers "which queue on which
shard causes the tail"::

    PYTHONPATH=src python tools/tail_blame.py                 # table
    PYTHONPATH=src python tools/tail_blame.py --json -        # summary
    PYTHONPATH=src python tools/tail_blame.py --flame out.folded
    PYTHONPATH=src python tools/tail_blame.py --input run.jsonl
    PYTHONPATH=src python tools/tail_blame.py \\
        --fail-if pool_wait\\>2500                             # CI gate
    PYTHONPATH=src python tools/tail_blame.py \\
        --budgets ci/fleet_blame.json                         # CI gate
    PYTHONPATH=src python tools/tail_blame.py \\
        --diff baseline.json                                  # regression

Budget gates compare each phase's **mean blame ns per tail exemplar**
(the ``mean_ns`` field of the ``--json`` summary) against the budget.
``--diff`` takes a previous ``--json`` summary and attributes the p99
delta to the phase and shard means that moved.

Every number is simulated time, so the output is byte-identical
between the sharded and serial drives (``--serial`` to check) and
diffable run to run.

Exit codes: 0 ok; 1 a ``--fail-if``/``--budgets`` gate tripped;
2 scenario/input error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
for path in (str(SRC), str(REPO_ROOT / "tools")):
    if path not in sys.path:
        sys.path.insert(0, path)

DEFAULT_EXEMPLARS = 8


def load_records(path: str):
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def run_fleet(args):
    from repro.bench.fleet import build_fleet

    scenario = build_fleet(num_shards=args.shards,
                           clients_per_shard=args.clients,
                           requests_per_client=args.requests,
                           telemetry_path="", exemplars=0)
    fleet = scenario.attach_telemetry(window_ns=args.window,
                                      exemplars=args.exemplars)
    fingerprint, measures = scenario.run(serial=args.serial)
    return fleet.records, fingerprint, measures


def parse_gate(text: str):
    """One ``PHASE>NS`` gate; returns ``(phase, budget_ns)``."""
    from repro.obs.blame import BLAME_PHASES

    phase, sep, budget = text.partition(">")
    if not sep or phase not in BLAME_PHASES:
        raise ValueError(
            f"want PHASE>NS with PHASE in {'/'.join(BLAME_PHASES)}, "
            f"got {text!r}")
    return phase, float(budget)


def load_budgets(path: str):
    """A budgets file: ``{"phase_mean_ns": {"pool_wait": 2500, ...}}``."""
    from repro.obs.blame import BLAME_PHASES

    doc = json.loads(Path(path).read_text())
    budgets = doc.get("phase_mean_ns")
    if not isinstance(budgets, dict):
        raise ValueError("budgets file wants a phase_mean_ns object")
    for phase in budgets:
        if phase not in BLAME_PHASES:
            raise ValueError(f"unknown blame phase {phase!r}")
    return {phase: float(ns) for phase, ns in budgets.items()}


def render_blame(summary: dict) -> str:
    from repro.bench import render_table

    headers = ["shard", "queue", "phase", "ns", "req", "share%"]
    total = summary["exemplar_latency_sum_ns"] or 1
    rows = [[f"shard{row['shard']}", row["queue"] or "-", row["phase"],
             str(row["ns"]), str(row["requests"]),
             f"{row['ns'] / total * 100:.1f}"]
            for row in summary["table"]]
    p99 = summary["p99_ns"]
    return render_table(
        headers, rows,
        title=f"tail_blame — {summary['exemplars']} exemplars / "
              f"{summary['requests']} requests, stream p99 "
              f"{p99 if p99 is not None else '-'}ns")


def render_diff(diff: dict) -> str:
    from repro.bench import render_table

    rows = [[row["phase"], f"{row['mean_ns']:.1f}",
             f"{row['baseline_mean_ns']:.1f}",
             f"{row['delta_ns']:+.1f}"] for row in diff["phases"]]
    rows += [[f"shard {row['shard']}", f"{row['mean_ns']:.1f}",
              f"{row['baseline_mean_ns']:.1f}",
              f"{row['delta_ns']:+.1f}"] for row in diff["shards"]
             if row["delta_ns"]]
    delta = diff["p99_delta_ns"]
    title = (f"tail_blame diff — p99 {diff['p99_ns']}ns vs "
             f"{diff['baseline_p99_ns']}ns"
             + (f" ({delta:+d}ns)" if delta is not None else ""))
    return render_table(["blame", "mean ns", "baseline", "delta"],
                        rows, title=title)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--input", metavar="FILE.jsonl",
                        help="roll up an existing telemetry stream "
                             "(with exemplars) instead of running")
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--clients", type=int, default=128,
                        help="clients per shard (default 128)")
    parser.add_argument("--requests", type=int, default=3,
                        help="requests per client (default 3)")
    parser.add_argument("--exemplars", type=int,
                        default=DEFAULT_EXEMPLARS, metavar="K",
                        help="slowest requests kept per window "
                             f"(default {DEFAULT_EXEMPLARS})")
    parser.add_argument("--window", type=int, metavar="NS",
                        help="telemetry window width in simulated ns")
    parser.add_argument("--serial", action="store_true",
                        help="drive the serial merge (identical blame)")
    parser.add_argument("--json", metavar="FILE",
                        help="write the blame summary as JSON "
                             "('-' for stdout)")
    parser.add_argument("--flame", metavar="FILE",
                        help="write flamegraph folded stacks "
                             "(shard;queue;phase ns; '-' for stdout)")
    parser.add_argument("--diff", metavar="BASELINE.json",
                        help="attribute the p99 delta against a "
                             "previous --json summary")
    parser.add_argument("--fail-if", action="append", default=[],
                        metavar="PHASE>NS",
                        help="exit 1 if the phase's mean blame ns per "
                             "exemplar exceeds NS (repeatable)")
    parser.add_argument("--budgets", metavar="BUDGETS.json",
                        help="phase_mean_ns budgets file; each entry "
                             "acts like a --fail-if gate")
    parser.add_argument("--history", metavar="FILE.json",
                        help="append phase means to a bench_history "
                             "file under the tail_blame figure")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the table (exports/gates only)")
    args = parser.parse_args(argv)

    gates = {}
    try:
        if args.budgets:
            gates.update(load_budgets(args.budgets))
        for text in args.fail_if:
            phase, budget = parse_gate(text)
            gates[phase] = budget
    except (OSError, ValueError) as exc:
        print(f"tail_blame: bad budget: {exc}", file=sys.stderr)
        return 2

    from repro.obs.blame import diff_blame, folded_blame, summarize_blame

    if args.input:
        if args.window:
            parser.error("--window only applies when running the "
                         "fleet, not with --input")
        try:
            records = load_records(args.input)
        except (OSError, ValueError) as exc:
            print(f"tail_blame: cannot read {args.input}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        from repro.obs.telemetry import DEFAULT_WINDOW_NS
        args.window = args.window or DEFAULT_WINDOW_NS
        try:
            records, fingerprint, measures = run_fleet(args)
        except Exception as exc:  # scenario misconfiguration
            print(f"tail_blame: fleet run failed: {exc}",
                  file=sys.stderr)
            return 2
        if not args.quiet:
            print(f"fleet: {fingerprint['requests']} requests, "
                  f"frontier {fingerprint['frontier_ns']}ns, p99 "
                  f"{fingerprint['p99_ns']}ns "
                  f"({'serial' if args.serial else 'sharded'})",
                  file=sys.stderr)

    summary = summarize_blame(records)
    if not summary["exemplars"]:
        print("tail_blame: stream holds no exemplars (run with "
              "--exemplars K, or export one via fleet_top --fleet "
              "--exemplars K --jsonl)", file=sys.stderr)
        return 2

    if args.json:
        text = json.dumps(summary, indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            Path(args.json).write_text(text)
    if args.flame:
        text = "".join(line + "\n" for line in folded_blame(records))
        if args.flame == "-":
            sys.stdout.write(text)
        else:
            Path(args.flame).write_text(text)
    if not args.quiet:
        print(render_blame(summary))

    if args.diff:
        try:
            baseline = json.loads(Path(args.diff).read_text())
            diff = diff_blame(summary, baseline)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"tail_blame: bad baseline {args.diff}: {exc}",
                  file=sys.stderr)
            return 2
        print(render_diff(diff))

    if args.history:
        from bench_history import append_entry
        figs = {"tail_blame": {
            f"{phase}_mean_ns": summary["phases"][phase]["mean_ns"]
            for phase in summary["phases"]
            if summary["phases"][phase]["total_ns"]}}
        p99 = summary["p99_ns"]
        append_entry(args.history, figs=figs,
                     p99_ns={"tail_blame": p99} if p99 else None)
        print(f"appended tail_blame figures to {args.history}",
              file=sys.stderr)

    failed = False
    for phase in sorted(gates):
        mean = summary["phases"][phase]["mean_ns"]
        over = mean > gates[phase]
        failed = failed or over
        print(f"gate {phase}: mean {mean}ns vs budget "
              f"{gates[phase]:g}ns — {'FAIL' if over else 'ok'}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
