#!/usr/bin/env python3
"""metrics_export: dump a simulation's metrics as OpenMetrics text.

Runs one of the built-in offload scenarios (the same runners
``latency_profile.py`` uses), folds the critical-path profiler's
per-phase histograms into the simulator's MetricsRegistry, and writes
the whole registry — kernel gauges, NIC/driver counters, histograms —
in OpenMetrics/Prometheus text exposition format::

    PYTHONPATH=src python tools/metrics_export.py                 # stdout
    PYTHONPATH=src python tools/metrics_export.py -o metrics.prom
    PYTHONPATH=src python tools/metrics_export.py --offload recycled-get

With ``--blame STREAM.jsonl`` it instead exports the tail-blame
rollup of a fleet telemetry stream (written with exemplars on, see
``tools/tail_blame.py``) as (phase, shard)-labeled counters —
``blame_phase_ns_total{shard="shard3", key="pool_wait"}`` — one
labeled registry per shard via ``to_openmetrics_multi``.

The output is deterministic for a given scenario and parses back with
``repro.obs.parse_openmetrics`` (the round-trip the test suite checks),
so it can double as a golden artifact for dashboard ingestion tests.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
for path in (str(SRC), str(REPO_ROOT / "tools")):
    if path not in sys.path:
        sys.path.insert(0, path)

from _offload_runners import OFFLOADS, run_offload  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--offload", choices=sorted(OFFLOADS),
                        default="hash-lookup",
                        help="scenario to run (default hash-lookup)")
    parser.add_argument("--calls", type=int, default=4,
                        help="offload calls to issue (default 4)")
    parser.add_argument("--blame", metavar="STREAM.jsonl",
                        help="export a fleet telemetry stream's "
                             "tail-blame rollup as (phase, shard)-"
                             "labeled counters instead of running an "
                             "offload scenario")
    parser.add_argument("-o", "--output", metavar="FILE",
                        help="write to FILE instead of stdout")
    parser.add_argument("--label", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="constant label added to every sample "
                             "(repeatable; e.g. --label bed=server-0 "
                             "keeps multi-bed exports from colliding)")
    args = parser.parse_args(argv)

    labels = {}
    for item in args.label:
        key, sep, value = item.partition("=")
        if not sep or not key:
            parser.error(f"--label wants KEY=VALUE, got {item!r}")
        labels[key] = value

    if args.blame:
        import json

        from repro.obs import blame_registries, to_openmetrics_multi
        if labels:
            parser.error("--label does not combine with --blame "
                         "(samples are shard-labeled already)")
        try:
            with open(args.blame) as handle:
                records = [json.loads(line) for line in handle
                           if line.strip()]
        except (OSError, ValueError) as exc:
            print(f"metrics_export: cannot read {args.blame}: {exc}",
                  file=sys.stderr)
            return 2
        registries = blame_registries(records)
        if not registries:
            print(f"metrics_export: {args.blame} holds no blame "
                  "exemplars", file=sys.stderr)
            return 2
        text = to_openmetrics_multi(registries, label="shard")
        if args.output:
            Path(args.output).write_text(text)
            print(f"wrote {len(text.splitlines())} lines to "
                  f"{args.output}", file=sys.stderr)
        else:
            sys.stdout.write(text)
        return 0

    from repro.obs import profile_tracer

    from repro.obs import Tracer

    run = run_offload(
        args.offload, args.calls,
        instrument=lambda bed, label: Tracer(bed.sim, name=label))
    registry = run["bed"].sim.metrics
    profile_tracer(run["instrument"]).record_metrics(registry)
    text = registry.to_openmetrics(labels=labels or None)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {len(text.splitlines())} lines to {args.output}",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
