#!/usr/bin/env python3
"""metrics_export: dump a simulation's metrics as OpenMetrics text.

Runs one of the built-in offload scenarios (the same runners
``latency_profile.py`` uses), folds the critical-path profiler's
per-phase histograms into the simulator's MetricsRegistry, and writes
the whole registry — kernel gauges, NIC/driver counters, histograms —
in OpenMetrics/Prometheus text exposition format::

    PYTHONPATH=src python tools/metrics_export.py                 # stdout
    PYTHONPATH=src python tools/metrics_export.py -o metrics.prom
    PYTHONPATH=src python tools/metrics_export.py --offload recycled-get

The output is deterministic for a given scenario and parses back with
``repro.obs.parse_openmetrics`` (the round-trip the test suite checks),
so it can double as a golden artifact for dashboard ingestion tests.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
for path in (str(SRC), str(REPO_ROOT / "tools")):
    if path not in sys.path:
        sys.path.insert(0, path)

from _offload_runners import OFFLOADS, run_offload  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--offload", choices=sorted(OFFLOADS),
                        default="hash-lookup",
                        help="scenario to run (default hash-lookup)")
    parser.add_argument("--calls", type=int, default=4,
                        help="offload calls to issue (default 4)")
    parser.add_argument("-o", "--output", metavar="FILE",
                        help="write to FILE instead of stdout")
    parser.add_argument("--label", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="constant label added to every sample "
                             "(repeatable; e.g. --label bed=server-0 "
                             "keeps multi-bed exports from colliding)")
    args = parser.parse_args(argv)

    labels = {}
    for item in args.label:
        key, sep, value = item.partition("=")
        if not sep or not key:
            parser.error(f"--label wants KEY=VALUE, got {item!r}")
        labels[key] = value

    from repro.obs import profile_tracer

    from repro.obs import Tracer

    run = run_offload(
        args.offload, args.calls,
        instrument=lambda bed, label: Tracer(bed.sim, name=label))
    registry = run["bed"].sim.metrics
    profile_tracer(run["instrument"]).record_metrics(registry)
    text = registry.to_openmetrics(labels=labels or None)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {len(text.splitlines())} lines to {args.output}",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
