#!/usr/bin/env python
"""Inspect a trace recorded by the repro.obs tracer.

Reads the Chrome trace-event JSON written by ``Tracer.export_chrome``
(or ``pytest benchmarks/bench_*.py --trace OUT.json``) and reports:

* **summary** (default) — event counts per category and track, the
  simulated time span, and the race-inspector totals;
* ``--summary`` — per-track event counts with first/last timestamps
  (did every expected track record, and when?) — a sanity check that
  needs no Perfetto;
* ``--races`` — every self-modification (``self_mod``: WQE bytes
  rewritten between post and fetch — a RedN program editing itself)
  and stale-fetch race (``stale_wqe``: bytes rewritten between fetch
  and execute — the §3.1 prefetch incoherence window), with the
  per-field diffs;
* ``--timeline WQ`` — the chronological event stream of one work
  queue (by name, e.g. ``ticker-ring-sq``);
* ``--json`` — machine-readable output of whichever report was asked.

Exit status: 0 on success; with ``--fail-on-race``, 1 if any
``stale_wqe`` race was recorded (self-modification alone is how RedN
programs work and never fails the check).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.obs.inspect import (  # noqa: E402
    load_trace,
    race_report,
    render_races,
    render_summary,
    render_timeline,
    render_track_summary,
    summarize_trace,
    track_summary,
    wq_timeline,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", help="trace JSON file to inspect")
    parser.add_argument("--summary", action="store_true",
                        help="print per-track event counts and "
                             "first/last timestamps")
    parser.add_argument("--races", action="store_true",
                        help="print the self-modification / stale-fetch "
                             "race report")
    parser.add_argument("--timeline", metavar="WQ",
                        help="print the event timeline of one work queue")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    parser.add_argument("--fail-on-race", action="store_true",
                        help="exit 1 if any stale_wqe race was recorded")
    args = parser.parse_args(argv)

    data = load_trace(args.trace)

    if args.timeline:
        if args.json:
            print(json.dumps(wq_timeline(data, args.timeline), indent=2))
        else:
            print(render_timeline(data, args.timeline))
    elif args.races:
        if args.json:
            print(json.dumps(race_report(data), indent=2))
        else:
            print(render_races(data))
    elif args.summary:
        if args.json:
            entries = [dict(entry, names=dict(entry["names"]))
                       for entry in track_summary(data)]
            print(json.dumps(entries, indent=2))
        else:
            print(render_track_summary(data))
    else:
        if args.json:
            print(json.dumps(summarize_trace(data), indent=2))
        else:
            print(render_summary(data))

    if args.fail_on_race:
        stale = summarize_trace(data)["races"]["stale_wqe"]
        if stale:
            print(f"\nFAIL: {stale} stale-fetch race(s) recorded",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
