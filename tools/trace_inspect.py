#!/usr/bin/env python
"""Inspect a trace recorded by the repro.obs tracer.

Reads the Chrome trace-event JSON written by ``Tracer.export_chrome``
(or ``pytest benchmarks/bench_*.py --trace OUT.json``) and reports:

* **summary** (default) — event counts per category and track, the
  simulated time span, and the race-inspector totals;
* ``--summary`` — per-track event counts with first/last timestamps
  (did every expected track record, and when?) — a sanity check that
  needs no Perfetto;
* ``--races`` — every self-modification (``self_mod``: WQE bytes
  rewritten between post and fetch — a RedN program editing itself)
  and stale-fetch race (``stale_wqe``: bytes rewritten between fetch
  and execute — the §3.1 prefetch incoherence window), with the
  per-field diffs;
* ``--timeline WQ`` — the chronological event stream of one work
  queue (by name, e.g. ``ticker-ring-sq``);
* ``--json`` — machine-readable output of whichever report was asked.

With ``--journal`` the input is a flight-recorder journal
(``FlightRecorder.dump`` / benchmark ``--journal`` JSONL) instead of a
Chrome trace: the summary shows record counts per kind and track, the
checkpoint cadence, and any invariant violations found by replaying
the :class:`repro.obs.InvariantMonitor` over the records;
``--timeline WQ`` works on the journal's normalized event view.

Exit status: 0 on success; with ``--fail-on-race``, 1 if any
``stale_wqe`` race was recorded (self-modification alone is how RedN
programs work and never fails the check).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.obs.inspect import (  # noqa: E402
    load_trace,
    race_report,
    render_races,
    render_summary,
    render_timeline,
    render_track_summary,
    summarize_trace,
    track_summary,
    wq_timeline,
)


def summarize_journal(journal) -> dict:
    """Counts per kind and per track, span, checkpoints, violations."""
    from repro.obs import InvariantMonitor, events_from_journal

    monitor = InvariantMonitor()
    kinds: dict = {}
    for record in journal.records:
        kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
        monitor.observe(record)
    tracks: dict = {}
    for event in events_from_journal(journal.records):
        tracks[event.track] = tracks.get(event.track, 0) + 1
    timestamps = [record["ts"] for record in journal.records]
    return {
        "name": journal.meta.get("name", "?"),
        "beds": len(journal.metas),
        "records": len(journal.records),
        "evicted": journal.first_seq,
        "span_ns": [min(timestamps), max(timestamps)] if timestamps
        else [0, 0],
        "checkpoints": len(journal.checkpoints),
        "kinds": dict(sorted(kinds.items())),
        "tracks": dict(sorted(tracks.items())),
        "violations": monitor.violations,
    }


def render_journal_summary(summary: dict) -> str:
    lines = [f"journal {summary['name']}: {summary['records']} records"
             f" ({summary['evicted']} evicted), "
             f"{summary['checkpoints']} checkpoint(s), "
             f"{summary['beds']} bed(s), sim span "
             f"{summary['span_ns'][0]}..{summary['span_ns'][1]} ns"]
    lines.append("records by kind:")
    for kind, count in summary["kinds"].items():
        lines.append(f"  {kind:10s} {count:>8d}")
    lines.append("records by track:")
    for track, count in summary["tracks"].items():
        lines.append(f"  {track:28s} {count:>8d}")
    if summary["violations"]:
        lines.append(f"INVARIANT VIOLATIONS ({len(summary['violations'])}):")
        for violation in summary["violations"]:
            lines.append(f"  [{violation['name']}] seq "
                         f"{violation['seq']}: {violation['detail']}")
    else:
        lines.append("invariants: ok")
    return "\n".join(lines)


def _journal_timeline(journal, wq_name: str) -> list:
    from repro.obs import events_from_journal
    return [event.args for event in events_from_journal(journal.records)
            if event.track == f"wq:{wq_name}"]


def _journal_main(args) -> int:
    from repro.obs import load_journal

    journal = load_journal(args.trace)
    if args.timeline:
        records = _journal_timeline(journal, args.timeline)
        if args.json:
            print(json.dumps(records, indent=2))
        else:
            for record in records:
                fields = " ".join(
                    f"{key}={value}" for key, value in record.items()
                    if key not in ("kind", "ts", "wq"))
                print(f"{record['ts']:>12d} ns  {record['kind']:9s}"
                      f" {fields}")
    else:
        summary = summarize_journal(journal)
        if args.json:
            print(json.dumps(summary, indent=2))
        else:
            print(render_journal_summary(summary))
        if summary["violations"]:
            return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", help="trace JSON (or, with --journal, "
                                      "a flight-recorder JSONL) to inspect")
    parser.add_argument("--journal", action="store_true",
                        help="treat the input as a flight-recorder "
                             "journal instead of a Chrome trace")
    parser.add_argument("--summary", action="store_true",
                        help="print per-track event counts and "
                             "first/last timestamps")
    parser.add_argument("--races", action="store_true",
                        help="print the self-modification / stale-fetch "
                             "race report")
    parser.add_argument("--timeline", metavar="WQ",
                        help="print the event timeline of one work queue")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    parser.add_argument("--fail-on-race", action="store_true",
                        help="exit 1 if any stale_wqe race was recorded")
    args = parser.parse_args(argv)

    if args.journal:
        if args.races or args.fail_on_race:
            parser.error("race reports need a Chrome trace (the race "
                         "inspector lives in the tracer)")
        return _journal_main(args)

    data = load_trace(args.trace)

    if args.timeline:
        if args.json:
            print(json.dumps(wq_timeline(data, args.timeline), indent=2))
        else:
            print(render_timeline(data, args.timeline))
    elif args.races:
        if args.json:
            print(json.dumps(race_report(data), indent=2))
        else:
            print(render_races(data))
    elif args.summary:
        if args.json:
            entries = [dict(entry, names=dict(entry["names"]))
                       for entry in track_summary(data)]
            print(json.dumps(entries, indent=2))
        else:
            print(render_track_summary(data))
    else:
        if args.json:
            print(json.dumps(summarize_trace(data), indent=2))
        else:
            print(render_summary(data))

    if args.fail_on_race:
        stale = summarize_trace(data)["races"]["stale_wqe"]
        if stale:
            print(f"\nFAIL: {stale} stale-fetch race(s) recorded",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
