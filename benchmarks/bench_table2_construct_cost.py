"""Table 2: WR-count breakdown of RedN constructs.

Paper:

    if               1C + 1A + 3E
    while (unrolled) 1C + 1A + 3E   (per iteration)
    while (recycled) 3C + 2A + 4E   (per lap: +2 READs +1 ADD +1 ENABLE)

plus the 48-bit operand limit (the id field of the ctrl word).

Reproduced by *introspection*: the builder tags every WR it posts and
classifies opcodes into the paper's copy/atomic/ordering categories.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from _common import Testbed, print_comparison, run_once

from repro.ibv import wr_cas, wr_write
from repro.nic import ctrl_word
from repro.redn import ProgramBuilder, RecycledLoop, RednContext


def _context(bed):
    proc = bed.server.spawn_process("t2")
    return RednContext(bed.server.nic, proc.create_pd(), process=proc)


def _if_cost(ctx):
    builder = ProgramBuilder(ctx, name="t2if")
    scratch, scratch_mr = ctx.alloc_registered(64)
    ctl = builder.control_queue(name="ctl")
    worker = builder.worker_queue(name="wrk")
    branches = builder.worker_queue(name="brn")
    live = wr_write(scratch.addr, 8, scratch.addr + 8, scratch_mr.rkey)
    live.wr_id = 1
    branch = builder.template(branches, live, tag="if.branch")
    builder.emit_if(ctl, worker, branch, compare_id=1, tag="if")
    return builder.cost("if")


def _recycled_cost(ctx):
    builder = ProgramBuilder(ctx, name="t2rec")
    scratch, scratch_mr = ctx.alloc_registered(64)
    trigger_qp, _peer = ctx.nic.create_loopback_pair(
        ctx.pd, name="t2-trig")
    lane = builder.worker_queue(slots=4, name="lane")
    resp = builder.template(
        lane, wr_write(scratch.addr, 8, scratch.addr + 8,
                       scratch_mr.rkey), tag="while.resp")
    loop = RecycledLoop(builder, trigger_qp.recv_wq.cq, name="t2loop",
                        tag="while")
    loop.body(wr_cas(resp.field_addr("ctrl"), lane.rkey, 0, 0,
                     signaled=True), tag="while.cas")
    loop.restore(resp, offset=0, length=8)     # re-disarm the template
    loop.restore(resp, offset=8, length=56)    # restore patched fields
    loop.rearm(lane)                           # re-enable the response
    loop.rearm(trigger_qp.recv_wq)             # recycle the trigger ring
    loop.build()
    return builder.cost("while")


def scenario():
    bed = Testbed(num_clients=1)
    if_cost = _if_cost(_context(bed))
    rec_cost = _recycled_cost(_context(bed))
    return {
        "if": str(if_cost),
        "if_tuple": (if_cost.copies, if_cost.atomics, if_cost.ordering),
        "while_recycled": str(rec_cost),
        "while_recycled_tuple": (rec_cost.copies, rec_cost.atomics,
                                 rec_cost.ordering),
        "operand_limit_bits": 48,
    }


def bench_table2(benchmark):
    results = run_once(benchmark, scenario)
    rows = [
        ("if", results["if"], "1C + 1A + 3E"),
        ("while (unrolled, per iter)", results["if"], "1C + 1A + 3E"),
        ("while (recycled, per lap)", results["while_recycled"],
         "3C + 2A + 4E"),
        ("operand limit", f"{results['operand_limit_bits']} bits",
         "48 bits"),
    ]
    print_comparison("Table 2 — construct WR breakdown",
                     ["construct", "measured", "paper"], rows)

    assert results["if_tuple"] == (1, 1, 3)
    assert results["while_recycled_tuple"] == (3, 2, 4)
    # The operand limit is enforced by the ctrl-word packer.
    ctrl_word(0, (1 << 48) - 1)
    with pytest.raises(ValueError):
        ctrl_word(0, 1 << 48)
