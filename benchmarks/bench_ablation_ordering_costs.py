"""Ablation: how RedN's results depend on doorbell-order fetch cost.

The paper's §6 insight — "keeping WRs in server memory (to allow them
to be modified by other RDMA verbs) is a key bottleneck. If the NIC's
cache was made directly accessible via RDMA ... unnecessary PCIe
round-trips on the critical path can be avoided" — predicts that a
future RNIC with cheaper self-modification would lift construct
throughput substantially. This ablation sweeps the managed-fetch cost
(the PCIe round trip per doorbell-ordered WQE) and re-measures the
hash-get latency and the doorbell-order chain slope.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import Testbed, print_comparison, run_once

from repro.apps import MemcachedServer
from repro.redn.offload import OffloadClient

# (label, wqe_fetch_ns, managed_fetch_hold_ns)
SWEEP = (
    ("CX-5 (paper)", 350, 550),
    ("half-cost fetch", 175, 275),
    ("NIC-cache WQEs (§6 vision)", 40, 60),
    ("double-cost fetch", 700, 1100),
)

SAMPLES = 8
KEY = 0x21


def _patch_timing(nic, fetch_ns, hold_ns):
    nic.timing = nic.timing.with_overrides(
        wqe_fetch_ns=fetch_ns, managed_fetch_hold_ns=hold_ns)


def measure_get_latency(fetch_ns, hold_ns) -> float:
    bed = Testbed(num_clients=1)
    _patch_timing(bed.server.nic, fetch_ns, hold_ns)
    store = MemcachedServer(bed.server)
    store.set(KEY, b"v" * 64, force_bucket=0)
    offload, conn = store.attach_get_offload(
        bed.clients[0].nic, bed.client_pd(0), max_instances=SAMPLES + 2)
    offload.post_instances(SAMPLES + 1)
    client = OffloadClient(conn, bed.client_verbs(0))

    def run():
        latencies = []
        for index in range(SAMPLES + 1):
            result = yield from client.call(offload.payload_for(KEY))
            assert result.ok
            if index:
                latencies.append(result.latency_ns)
        return sum(latencies) / len(latencies) / 1000.0

    return bed.run(run())


def measure_doorbell_slope(fetch_ns, hold_ns) -> float:
    from repro.ibv import wr_noop
    bed = Testbed(num_clients=0)
    _patch_timing(bed.server.nic, fetch_ns, hold_ns)
    proc = bed.server.spawn_process("chains")
    pd = proc.create_pd()

    def chain_latency(length):
        qp, _peer = bed.server.nic.create_loopback_pair(
            pd, managed_send=True, send_slots=length + 4,
            owner=proc.owner_tag)
        for _ in range(length):
            qp.post_send(wr_noop(signaled=True), ring_doorbell=False)

        def run():
            start = bed.sim.now
            qp.send_wq.doorbell()
            yield qp.send_wq.cq.wait_for_count(length)
            return bed.sim.now - start

        return bed.run(run())

    return (chain_latency(16) - chain_latency(1)) / 15 / 1000.0


def scenario():
    results = {}
    for label, fetch_ns, hold_ns in SWEEP:
        results[f"{label}/get_us"] = measure_get_latency(fetch_ns,
                                                         hold_ns)
        results[f"{label}/slope_us"] = measure_doorbell_slope(fetch_ns,
                                                              hold_ns)
    return results


def bench_ablation_ordering(benchmark):
    results = run_once(benchmark, scenario)
    rows = [(label,
             f"{results[f'{label}/slope_us']:.2f}",
             f"{results[f'{label}/get_us']:.2f}")
            for label, _f, _h in SWEEP]
    print_comparison(
        "Ablation — doorbell-order fetch cost",
        ["configuration", "doorbell slope us/verb", "hash get us"],
        rows)

    base_get = results["CX-5 (paper)/get_us"]
    vision_get = results["NIC-cache WQEs (§6 vision)/get_us"]
    double_get = results["double-cost fetch/get_us"]
    # The §6 prediction: on-NIC WQE caching would cut get latency
    # substantially; costlier fetches hurt correspondingly.
    assert vision_get < base_get * 0.8
    assert double_get > base_get * 1.15
    # The chain slope tracks the fetch cost nearly linearly.
    assert (results["NIC-cache WQEs (§6 vision)/slope_us"]
            < results["CX-5 (paper)/slope_us"]
            < results["double-cost fetch/slope_us"])
