"""Figure 8: execution latency of NOOP chains under ordering modes.

Paper: a single NOOP costs 1.21 us (initial doorbell); each additional
verb costs ~0.17 us under WQ order (prefetch amortized), ~0.19 us under
completion order (WAIT bookkeeping), and ~0.54 us under doorbell order
("the NIC has to fetch WRs from memory one-by-one").
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import Testbed, print_comparison, run_once, within_factor

from repro.ibv import VerbsContext, wr_noop, wr_wait

CHAIN_LENGTHS = (1, 2, 4, 8, 16)

PAPER_PER_VERB_US = {
    "wq": 0.17,
    "completion": 0.19,
    "doorbell": 0.54,
}


def _measure_chain(bed, proc, pd, verbs, mode: str, length: int) -> float:
    """Latency (us) from doorbell to the chain's final completion."""
    qp, _peer = bed.server.nic.create_loopback_pair(
        pd, managed_send=(mode == "doorbell"), send_slots=4 * length + 8,
        owner=proc.owner_tag)
    own_cq = qp.send_wq.cq

    base_count = own_cq.count
    for index in range(length):
        if mode == "completion" and index > 0:
            # Each verb waits for its predecessor's completion.
            qp.post_send(wr_wait(own_cq.cq_num, base_count + index),
                         ring_doorbell=False)
        qp.post_send(wr_noop(signaled=True), ring_doorbell=False)

    def run():
        start = bed.sim.now
        qp.send_wq.doorbell()
        done = own_cq.wait_for_count(base_count + length)
        yield done
        return bed.sim.now - start

    return bed.run(run()) / 1000.0


def scenario():
    bed = Testbed(num_clients=1)
    proc = bed.server.spawn_process("chains")
    pd = proc.create_pd()
    verbs = VerbsContext(bed.sim)

    curves = {}
    for mode in ("wq", "completion", "doorbell"):
        curves[mode] = [
            _measure_chain(bed, proc, pd, verbs, mode, length)
            for length in CHAIN_LENGTHS]

    results = {}
    for mode, curve in curves.items():
        # Per-verb slope from the longest span (16 - 1 verbs).
        slope = (curve[-1] - curve[0]) / (CHAIN_LENGTHS[-1]
                                          - CHAIN_LENGTHS[0])
        results[f"{mode}_single_us"] = curve[0]
        results[f"{mode}_per_verb_us"] = slope
        results[f"{mode}_curve"] = curve
    return results


def bench_fig8(benchmark):
    results = run_once(benchmark, scenario)
    rows = []
    for mode in ("wq", "completion", "doorbell"):
        rows.append((mode,
                     f"{results[f'{mode}_single_us']:.2f}",
                     f"{results[f'{mode}_per_verb_us']:.2f}",
                     f"{PAPER_PER_VERB_US[mode]:.2f}"))
    print_comparison(
        "Fig 8 — chain latency by ordering mode",
        ["mode", "1-verb us", "per-verb us", "paper per-verb us"], rows)
    for mode in ("wq", "completion", "doorbell"):
        print("  curve", mode, [f"{v:.2f}" for v in
                                results[f"{mode}_curve"]])

    # Shape: stricter ordering costs strictly more per verb, with
    # doorbell ordering far above the others.
    wq = results["wq_per_verb_us"]
    completion = results["completion_per_verb_us"]
    doorbell = results["doorbell_per_verb_us"]
    assert wq < completion < doorbell
    assert doorbell >= 2.5 * completion
    for mode, reference in PAPER_PER_VERB_US.items():
        measured = results[f"{mode}_per_verb_us"]
        assert within_factor(measured, reference, 1.35), \
            f"{mode}: {measured:.3f} vs {reference}"
