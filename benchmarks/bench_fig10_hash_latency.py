"""Figure 10: average KV get latency vs value size (no collisions).

Paper: RedN beats every baseline — a 64KB pair in 16.22 us, within 5%
of a single round-trip READ ("Ideal"); one-sided pays up to 2x (two
dependent RTTs); two-sided polling is competitive but burns a core;
two-sided event-based is up to 3.8x slower (wake-up per request).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import Testbed, print_comparison, run_once

from repro.apps import (
    MemcachedServer,
    OneSidedKvServer,
    RpcServer,
    STATUS_OK,
)
from repro.bench.stats import summarize
from repro.ibv import VerbsContext, wr_read
from repro.redn.offload import OffloadClient

VALUE_SIZES = (64, 1024, 4096, 16384, 65536)
SAMPLES = 12
KEY = 0x77


def _avg(samples):
    return summarize(samples)["avg"] / 1000.0


def measure_redn(value_size: int) -> float:
    bed = Testbed(num_clients=1, server_memory=512 * 1024 * 1024)
    store = MemcachedServer(bed.server,
                            slab_size=128 * 1024 * 1024)
    store.set(KEY, b"v" * value_size, force_bucket=0)
    offload, conn = store.attach_get_offload(
        bed.clients[0].nic, bed.client_pd(0), max_instances=SAMPLES + 2)
    offload.post_instances(SAMPLES + 1)
    client = OffloadClient(conn, bed.client_verbs(0))

    def run():
        latencies = []
        for index in range(SAMPLES + 1):
            result = yield from client.call(offload.payload_for(KEY),
                                            timeout_ns=30_000_000)
            assert result.ok
            if index:                # first op warms the path
                latencies.append(result.latency_ns)
        return latencies

    return _avg(bed.run(run()))


def measure_one_sided(value_size: int) -> float:
    bed = Testbed(num_clients=1, server_memory=512 * 1024 * 1024)
    server = OneSidedKvServer(bed.server,
                              slab_size=128 * 1024 * 1024)
    server.set(KEY, b"v" * value_size)
    client = server.connect(bed.clients[0].nic, bed.client_pd(0))

    def run():
        latencies = []
        for index in range(SAMPLES + 1):
            value, latency, _rtts = yield from client.get(KEY)
            assert value is not None
            if index:
                latencies.append(latency)
        return latencies

    return _avg(bed.run(run()))


def measure_two_sided(value_size: int, mode: str) -> float:
    bed = Testbed(num_clients=1, server_memory=512 * 1024 * 1024)
    store = MemcachedServer(bed.server,
                            slab_size=128 * 1024 * 1024)
    store.set(KEY, b"v" * value_size)
    server = RpcServer(store, mode=mode, workers=1)
    client = server.connect(bed.clients[0].nic, bed.client_pd(0))
    server.start()

    def run():
        latencies = []
        for index in range(SAMPLES + 1):
            status, _value, latency = yield from client.get(KEY)
            assert status == STATUS_OK
            if index:
                latencies.append(latency)
        return latencies

    return _avg(bed.run(run()))


def measure_ideal(value_size: int) -> float:
    """A single network-round-trip READ of the value (Fig 10 'Ideal')."""
    bed = Testbed(num_clients=1, server_memory=512 * 1024 * 1024)
    proc = bed.server.spawn_process("ideal")
    pd = proc.create_pd()
    value = proc.alloc(value_size, label="value")
    value_mr = pd.register(value)
    server_qp = proc.create_qp(pd, name="ideal-s")
    client_qp = bed.clients[0].nic.create_qp(bed.client_pd(0),
                                             name="ideal-c")
    server_qp.connect(client_qp)
    sink = bed.clients[0].memory.alloc(value_size, owner="client")
    verbs = VerbsContext(bed.sim)

    def run():
        latencies = []
        for index in range(SAMPLES + 1):
            start = bed.sim.now
            yield from verbs.execute_sync_checked(
                client_qp, wr_read(sink.addr, value_size, value.addr,
                                   value_mr.rkey))
            if index:
                latencies.append(bed.sim.now - start)
        return latencies

    return _avg(bed.run(run()))


def scenario():
    results = {}
    for size in VALUE_SIZES:
        results[f"redn/{size}"] = measure_redn(size)
        results[f"one-sided/{size}"] = measure_one_sided(size)
        results[f"two-sided-poll/{size}"] = measure_two_sided(
            size, "polling")
        results[f"two-sided-event/{size}"] = measure_two_sided(
            size, "event")
        results[f"ideal/{size}"] = measure_ideal(size)
    return results


def bench_fig10(benchmark):
    results = run_once(benchmark, scenario)
    systems = ("redn", "one-sided", "two-sided-poll",
               "two-sided-event", "ideal")
    rows = [(f"{size}B",
             *(f"{results[f'{system}/{size}']:.2f}"
               for system in systems))
            for size in VALUE_SIZES]
    print_comparison("Fig 10 — get latency vs value size (us)",
                     ("value", *systems), rows)

    for size in VALUE_SIZES:
        redn = results[f"redn/{size}"]
        one_sided = results[f"one-sided/{size}"]
        event = results[f"two-sided-event/{size}"]
        poll = results[f"two-sided-poll/{size}"]
        # RedN wins at every size (the paper's headline).
        assert redn < one_sided, f"{size}: {redn} !< {one_sided}"
        assert redn < poll, f"{size}: {redn} !< {poll}"
        assert redn < event

    # Paper's factors: one-sided up to ~2x, event up to ~3.8x.
    one_sided_factor = max(results[f"one-sided/{size}"]
                           / results[f"redn/{size}"]
                           for size in VALUE_SIZES)
    event_factor = max(results[f"two-sided-event/{size}"]
                       / results[f"redn/{size}"]
                       for size in VALUE_SIZES)
    assert one_sided_factor >= 1.35, one_sided_factor
    assert event_factor >= 2.0, event_factor
    # 64KB within ~15% of the ideal single READ (paper: 5%).
    ratio = results["redn/65536"] / results["ideal/65536"]
    assert ratio <= 1.25, ratio
    print(f"\n  one-sided worst-case factor: {one_sided_factor:.2f}x "
          f"(paper: up to 2x)")
    print(f"  event-based worst-case factor: {event_factor:.2f}x "
          f"(paper: up to 3.8x)")
    print(f"  RedN 64KB vs ideal: {ratio:.3f} (paper: within 5%)")
