"""Figure 16: surviving a Memcached process crash (paper §5.6).

Timeline experiment: a client issues gets continuously; at t=2s the
Memcached process is killed and immediately restarted by the OS.

* **vanilla** — the RDMA/service resources die with the process; the
  OS respawn takes ~1 s to bootstrap plus ~1.25 s to rebuild metadata
  and hash tables: a >2 s hole in served requests.
* **RedN** — the offload's queues and regions belong to an empty hull
  parent; the NIC keeps serving gets through the crash without a
  single failed request.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import Testbed, print_comparison, run_once

from repro.apps import MemcachedServer, RpcServer, STATUS_OK
from repro.net import CrashInjector, RestartPolicy
from repro.redn.offload import OffloadClient

RUN_NS = 6_000_000_000            # 6 s timeline
CRASH_NS = 2_000_000_000          # kill at t=2 s
BUCKET_NS = 250_000_000           # 250 ms histogram buckets
THINK_NS = 2_000_000              # ~500 gets/s offered load
TIMEOUT_NS = 50_000_000           # client request timer
KEY = 0x31


def _bucketize(completions):
    buckets = [0] * (RUN_NS // BUCKET_NS)
    for timestamp in completions:
        index = min(len(buckets) - 1, timestamp // BUCKET_NS)
        buckets[index] += 1
    return buckets


def measure_vanilla():
    """RPC service without a hull: crash -> outage -> rebuild."""
    bed = Testbed(num_clients=1)
    state = {}

    def build_service():
        store = MemcachedServer(bed.server, hull_parent=False,
                                name=f"mc{len(state)}")
        store.set(KEY, b"v" * 64)
        server = RpcServer(store, mode="polling", workers=1,
                           name=f"rpc{len(state)}")
        client = server.connect(bed.clients[0].nic, bed.client_pd(0))
        server.start()
        state["store"] = store
        state["client"] = client

    build_service()
    injector = CrashInjector(bed.sim, bed.server)
    injector.kill_process_at(CRASH_NS, state["store"].process,
                             on_restart=build_service,
                             restart=RestartPolicy())

    completions, failures = [], [0]

    def reader():
        while bed.sim.now < RUN_NS:
            status, _v, _lat = yield from state["client"].get(
                KEY, timeout_ns=TIMEOUT_NS)
            if status == STATUS_OK:
                completions.append(bed.sim.now)
            else:
                failures[0] += 1
            yield bed.sim.timeout(THINK_NS)

    bed.sim.process(reader(), name="reader")
    bed.sim.run(until=RUN_NS + 200_000_000)
    return _bucketize(completions), failures[0]


def measure_redn():
    """Hull-parented offload: the NIC serves straight through."""
    bed = Testbed(num_clients=1)
    store = MemcachedServer(bed.server, hull_parent=True)
    store.set(KEY, b"v" * 64)
    expected_gets = RUN_NS // THINK_NS + 16
    offload, conn = store.attach_get_offload(
        bed.clients[0].nic, bed.client_pd(0),
        max_instances=expected_gets)
    offload.post_instances(expected_gets)
    client = OffloadClient(conn, bed.client_verbs(0))

    injector = CrashInjector(bed.sim, bed.server)
    injector.kill_process_at(CRASH_NS, store.process,
                             restart=RestartPolicy(),
                             on_restart=store.respawn)

    completions, failures = [], [0]

    def reader():
        while bed.sim.now < RUN_NS:
            result = yield from client.call(offload.payload_for(KEY),
                                            timeout_ns=TIMEOUT_NS)
            if result.ok:
                completions.append(bed.sim.now)
            else:
                failures[0] += 1
            yield bed.sim.timeout(THINK_NS)

    bed.sim.process(reader(), name="reader")
    bed.sim.run(until=RUN_NS + 200_000_000)
    return _bucketize(completions), failures[0]


def scenario():
    vanilla_buckets, vanilla_failures = measure_vanilla()
    redn_buckets, redn_failures = measure_redn()
    vanilla_zero = sum(1 for count in vanilla_buckets if count == 0)
    return {
        "vanilla_buckets": vanilla_buckets,
        "redn_buckets": redn_buckets,
        "vanilla_failures": vanilla_failures,
        "redn_failures": redn_failures,
        "vanilla_outage_s": vanilla_zero * BUCKET_NS / 1e9,
        "redn_min_bucket": min(redn_buckets),
    }


def bench_fig16(benchmark):
    results = run_once(benchmark, scenario)
    rows = []
    for index in range(len(results["vanilla_buckets"])):
        t = index * BUCKET_NS / 1e9
        rows.append((f"{t:.2f}s",
                     results["vanilla_buckets"][index],
                     results["redn_buckets"][index]))
    print_comparison("Fig 16 — gets served per 250ms bucket "
                     "(crash at t=2s)",
                     ["t", "vanilla", "RedN (hull)"], rows)
    print(f"\n  vanilla outage: ~{results['vanilla_outage_s']:.2f}s "
          f"({results['vanilla_failures']} failed gets); paper: "
          f">= 2.25s")
    print(f"  RedN failed gets: {results['redn_failures']} "
          f"(paper: no disruption)")

    # Vanilla shows a multi-second hole (~1s bootstrap + 1.25s rebuild).
    assert results["vanilla_outage_s"] >= 1.75
    assert results["vanilla_failures"] > 0
    # RedN never misses a beat: every bucket keeps serving, zero fails.
    assert results["redn_failures"] == 0
    assert results["redn_min_bucket"] > 0
