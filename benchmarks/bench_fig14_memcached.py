"""Figure 14: Memcached get latency by IO size (paper §5.4).

Paper (Memtier over the RDMA-ified cuckoo Memcached): RedN's NIC-served
gets are up to 1.7x faster than one-sided and 2.6x faster than
two-sided over libvma — and VMA degrades further at large values since
the sockets API forces memcpys on both sides.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import Testbed, print_comparison, run_once

from repro.apps import (
    ClosedLoopClient,
    MemcachedServer,
    OneSidedKvServer,
    RpcServer,
    STATUS_OK,
    VMA_COSTS,
)
from repro.bench.stats import summarize
from repro.redn.offload import OffloadClient

IO_SIZES = (64, 1024, 4096, 16384, 65536)
OPS = 12
KEYS = list(range(0x200, 0x200 + 4))


def measure_redn(value_size: int) -> float:
    bed = Testbed(num_clients=1, server_memory=512 * 1024 * 1024)
    store = MemcachedServer(bed.server, slab_size=256 * 1024 * 1024)
    for key in KEYS:
        store.set(key, bytes([key & 0xFF]) * value_size, force_bucket=0)
    offload, conn = store.attach_get_offload(
        bed.clients[0].nic, bed.client_pd(0),
        max_instances=OPS + len(KEYS))
    offload.post_instances(OPS + 2)
    client = OffloadClient(conn, bed.client_verbs(0))

    def get(key):
        result = yield from client.call(offload.payload_for(key),
                                        timeout_ns=60_000_000)
        return result.ok

    worker = ClosedLoopClient(bed.sim, "memtier-redn", KEYS,
                              value_size, get)
    bed.run(worker.run(OPS))
    assert worker.failures == 0
    return worker.get_latencies.avg_us


def measure_one_sided(value_size: int) -> float:
    bed = Testbed(num_clients=1, server_memory=512 * 1024 * 1024)
    server = OneSidedKvServer(bed.server, slab_size=256 * 1024 * 1024)
    for key in KEYS:
        server.set(key, bytes([key & 0xFF]) * value_size)
    client = server.connect(bed.clients[0].nic, bed.client_pd(0))

    def get(key):
        value, _latency, _rtts = yield from client.get(key)
        return value is not None

    worker = ClosedLoopClient(bed.sim, "memtier-1s", KEYS,
                              value_size, get)
    bed.run(worker.run(OPS))
    return worker.get_latencies.avg_us


def measure_vma(value_size: int) -> float:
    bed = Testbed(num_clients=1, server_memory=512 * 1024 * 1024)
    store = MemcachedServer(bed.server, slab_size=256 * 1024 * 1024)
    for key in KEYS:
        store.set(key, bytes([key & 0xFF]) * value_size)
    server = RpcServer(store, mode="polling", workers=1,
                       costs=VMA_COSTS)
    rpc_client = server.connect(bed.clients[0].nic, bed.client_pd(0))
    server.start()

    def get(key):
        status, _value, _latency = yield from rpc_client.get(key)
        return status == STATUS_OK

    worker = ClosedLoopClient(bed.sim, "memtier-vma", KEYS,
                              value_size, get)
    bed.run(worker.run(OPS))
    return worker.get_latencies.avg_us


def scenario():
    results = {}
    for size in IO_SIZES:
        results[f"redn/{size}"] = measure_redn(size)
        results[f"one-sided/{size}"] = measure_one_sided(size)
        results[f"vma/{size}"] = measure_vma(size)
    return results


def bench_fig14(benchmark):
    results = run_once(benchmark, scenario)
    rows = [(f"{size}B",
             f"{results[f'redn/{size}']:.2f}",
             f"{results[f'one-sided/{size}']:.2f}",
             f"{results[f'vma/{size}']:.2f}")
            for size in IO_SIZES]
    print_comparison(
        "Fig 14 — Memcached get latency by IO size (us)",
        ["IO", "RedN", "one-sided", "two-sided (VMA)"], rows)

    one_sided_factor = max(results[f"one-sided/{size}"]
                           / results[f"redn/{size}"]
                           for size in IO_SIZES)
    vma_factor = max(results[f"vma/{size}"] / results[f"redn/{size}"]
                     for size in IO_SIZES)
    print(f"\n  one-sided worst-case factor: {one_sided_factor:.2f}x "
          f"(paper: up to 1.7x)")
    print(f"  VMA worst-case factor: {vma_factor:.2f}x "
          f"(paper: up to 2.6x)")

    for size in IO_SIZES:
        assert results[f"redn/{size}"] < results[f"one-sided/{size}"]
        assert results[f"redn/{size}"] < results[f"vma/{size}"]
    assert one_sided_factor >= 1.3
    assert vma_factor >= 1.7
    # VMA's memcpy penalty grows with IO size: its gap to RedN widens
    # in absolute terms between 64B and 64KB.
    gap_small = results["vma/64"] - results["redn/64"]
    gap_large = results["vma/65536"] - results["redn/65536"]
    assert gap_large > gap_small
