"""Sharded KV fleet simulator speed: the ``fleet_simspeed`` workload.

Like ``bench_cluster_simspeed``, this measures the simulator itself
(host-CPU events/second), not the simulated system. The scenario is 8
cuckoo-KV shards serving 1024 pooled logical client connections —
consistent-hash request routing, shared CQs with cookie demux, batched
doorbells — driven once by the conservative sharded synchronizer and
once by the one-timestamp-window serial merge. The two drives must be
bit-identical, and the sharded drive must keep a real speedup even
under the fleet's zipfian hot-shard imbalance.

Marked ``bench`` so the wall-clock-sensitive run can be split from the
deterministic tier-1 suite: ``pytest -m "not bench"`` skips it.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from _common import print_comparison, run_once

from perf_smoke import (FLEET_SPEEDUP_FLOOR, FLEET_WORKLOAD,
                        run_speedup_workload)

pytestmark = pytest.mark.bench


def bench_fleet_simspeed(benchmark):
    def scenario():
        measured = run_speedup_workload(FLEET_WORKLOAD, reps=3)
        return {
            "events": measured["events"],
            "events_per_sec": measured["events_per_sec"],
            "serial_events_per_sec": measured["serial_events_per_sec"],
            "speedup": measured["speedup"],
            "aggregate_mops": measured["aggregate_mops"],
            "requests": measured["fingerprint"]["requests"],
            "doorbell_rings": measured["fingerprint"]["doorbell_rings"],
        }

    result = run_once(benchmark, scenario)
    print_comparison(
        "Sharded KV fleet — kernel events per CPU-second",
        ["drive", "events/s", "events", "speedup", "Mops"],
        [("sharded", f"{result['events_per_sec']:,d}",
          result["events"], f"{result['speedup']:.2f}x",
          f"{result['aggregate_mops']:.3f}"),
         ("serial merge", f"{result['serial_events_per_sec']:,d}",
          result["events"], "1.00x",
          f"{result['aggregate_mops']:.3f}")])
    # run_speedup_workload has already asserted bit-identity between the
    # sharded and serial drives; here we hold the perf claim itself.
    assert result["events_per_sec"] > 0
    assert result["speedup"] >= FLEET_SPEEDUP_FLOOR
