"""Ablation: WQ-level parallelism (paper §3.5 "Parallelism").

Two sweeps:

1. **Chain concurrency** — offloaded-get throughput as client
   connections grow: single chains are latency-bound; the port's
   fetch engine saturates with a handful of concurrent chains ("to
   hide WR latencies, it is important to parallelize logically
   unrelated operations").
2. **Prefetch depth** — the WQ-order chain slope as the NIC's prefetch
   window shrinks: with a window of 1, even unmanaged queues degrade
   toward doorbell-order behaviour, showing why prefetching exists —
   and why RedN must disable it (managed mode) only where WQEs are
   self-modified.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import Testbed, print_comparison, run_once

from repro.apps import MemcachedServer
from repro.ibv import wr_noop, wr_recv, wr_send
from repro.redn.offload import OffloadConnection
from repro.offloads.hash_lookup import HashGetOffload

CONNECTION_SWEEP = (1, 2, 4, 8)
PREFETCH_SWEEP = (1, 4, 32)
LOOKUPS_PER_CONN = 120
KEY = 0x42


def measure_throughput(conns: int) -> float:
    bed = Testbed(num_clients=1, server_memory=512 * 1024 * 1024)
    store = MemcachedServer(bed.server, num_buckets=1024,
                            slab_size=64 * 1024 * 1024)
    store.set(KEY, b"v" * 64, force_bucket=0)
    offloads = []
    for lane in range(conns):
        conn = OffloadConnection(
            store.ctx, bed.clients[0].nic, bed.client_pd(0),
            recv_slots=4 * LOOKUPS_PER_CONN + 16,
            send_slots=2 * LOOKUPS_PER_CONN + 16, name=f"ab{lane}")
        offload = HashGetOffload(store.ctx, store.table, store.table_mr,
                                 conn, buckets=1,
                                 max_instances=LOOKUPS_PER_CONN + 4,
                                 name=f"abget{lane}")
        offload.post_instances(LOOKUPS_PER_CONN)
        for _ in range(LOOKUPS_PER_CONN + 8):
            conn.client_qp.post_recv(wr_recv())
        offloads.append((offload, conn))

    sim = bed.sim
    request = bed.clients[0].memory.alloc(64, owner="client")
    payload = offloads[0][0].payload_for(KEY)
    bed.clients[0].memory.write(request.addr, payload)

    def flood(conn):
        for _ in range(LOOKUPS_PER_CONN):
            conn.client_qp.post_send(
                wr_send(request.addr, len(payload), signaled=False))
            yield sim.timeout(200)

    def run():
        start = sim.now
        for _offload, conn in offloads:
            sim.process(flood(conn))
        waiters = [conn.client_recv_cq.wait_for_count(LOOKUPS_PER_CONN)
                   for _o, conn in offloads]
        for event in waiters:
            if not event.triggered:
                yield event
        return (conns * LOOKUPS_PER_CONN) / ((sim.now - start) / 1e9)

    return bed.run(run()) / 1e3


def measure_prefetch_slope(window: int) -> float:
    bed = Testbed(num_clients=0)
    bed.server.nic.timing = bed.server.nic.timing.with_overrides(
        prefetch_batch=window)
    proc = bed.server.spawn_process("chains")
    pd = proc.create_pd()

    def chain_latency(length):
        qp, _peer = bed.server.nic.create_loopback_pair(
            pd, send_slots=length + 4, owner=proc.owner_tag)
        for _ in range(length):
            qp.post_send(wr_noop(signaled=True), ring_doorbell=False)

        def run():
            start = bed.sim.now
            qp.send_wq.doorbell()
            yield qp.send_wq.cq.wait_for_count(length)
            return bed.sim.now - start

        return bed.run(run())

    return (chain_latency(16) - chain_latency(1)) / 15 / 1000.0


def scenario():
    results = {}
    for conns in CONNECTION_SWEEP:
        results[f"conns{conns}_kops"] = measure_throughput(conns)
    for window in PREFETCH_SWEEP:
        results[f"prefetch{window}_slope_us"] = \
            measure_prefetch_slope(window)
    return results


def bench_ablation_parallelism(benchmark):
    results = run_once(benchmark, scenario)
    rows = [(conns, f"{results[f'conns{conns}_kops']:.0f}")
            for conns in CONNECTION_SWEEP]
    print_comparison("Ablation — chain concurrency vs throughput",
                     ["connections", "lookups K/s"], rows)
    rows = [(window, f"{results[f'prefetch{window}_slope_us']:.2f}")
            for window in PREFETCH_SWEEP]
    print_comparison("Ablation — prefetch window vs WQ-order slope",
                     ["prefetch window", "us per verb"], rows)

    # Concurrency helps until the port engine saturates (~2 chains on
    # this chain shape), after which extra connections add nothing.
    assert results["conns2_kops"] > 1.2 * results["conns1_kops"]
    assert results["conns8_kops"] < 1.1 * results["conns4_kops"]
    # Shallow prefetch degrades unmanaged chains toward managed cost.
    assert (results["prefetch32_slope_us"]
            < results["prefetch4_slope_us"]
            < results["prefetch1_slope_us"])
