"""Table 1: verb-processing bandwidth per ConnectX generation.

Paper (ib_write_bw, 64B writes, not network-bound):

    ConnectX-3 (2 PUs)   15 M verbs/s
    ConnectX-5 (8 PUs)   63 M verbs/s
    ConnectX-6 (16 PUs) 112 M verbs/s

The doubling tracks the processing-unit count — reproduced here by
flooding small WRITEs across enough QPs to occupy every PU.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import (
    Testbed,
    measure_flood_rate,
    print_comparison,
    run_once,
    within_factor,
)

from repro.ibv import wr_write
from repro.nic import CONNECTX3, CONNECTX5, CONNECTX6

PAPER_MVERBS = {
    "ConnectX-3": 15.0,
    "ConnectX-5": 63.0,
    "ConnectX-6": 112.0,
}

IO_SIZE = 64


def _rate_for_model(model) -> float:
    bed = Testbed(num_clients=1, model=model)
    proc = bed.server.spawn_process("sink")
    pd = proc.create_pd()
    sink = proc.alloc(IO_SIZE * 64, label="sink")
    sink_mr = pd.register(sink)

    num_qps = 2 * model.pus_per_port
    qps = []
    client_nic = bed.clients[0].nic
    for index in range(num_qps):
        server_qp = proc.create_qp(pd, name=f"t1s{index}")
        client_qp = client_nic.create_qp(
            bed.client_pd(0), send_slots=512, name=f"t1c{index}")
        server_qp.connect(client_qp)
        qps.append(client_qp)

    src = client_nic.memory.alloc(IO_SIZE, owner="client")

    def make_wqe(_qp):
        return wr_write(src.addr, IO_SIZE, sink.addr, sink_mr.rkey,
                        signaled=False)

    return measure_flood_rate(bed, qps, make_wqe) / 1e6


def scenario():
    return {model.name: _rate_for_model(model)
            for model in (CONNECTX3, CONNECTX5, CONNECTX6)}


def bench_table1(benchmark):
    results = run_once(benchmark, scenario)
    rows = [(name, f"{results[name]:.1f}", f"{PAPER_MVERBS[name]:.0f}")
            for name in PAPER_MVERBS]
    print_comparison("Table 1 — verb rate by NIC generation",
                     ["RNIC", "measured M/s", "paper M/s"], rows)

    for name, reference in PAPER_MVERBS.items():
        assert within_factor(results[name], reference, 1.3), \
            f"{name}: {results[name]:.1f}M vs {reference}M"
    # The headline: rate roughly doubles per generation.
    assert results["ConnectX-5"] > 3 * results["ConnectX-3"]
    assert results["ConnectX-6"] > 1.5 * results["ConnectX-5"]
