"""Benchmark-suite options: ``--trace-out OUT.json`` / ``--breakdown``.

Running any benchmark with ``--trace-out`` attaches a
:class:`repro.obs.Tracer` to every :class:`Testbed` the benchmark
builds and writes one merged Chrome trace-event JSON at session end —
load it at https://ui.perfetto.dev or feed it to
``tools/trace_inspect.py``. The ``REPRO_TRACE`` environment variable
is an equivalent knob for non-pytest entry points. (The bare
``--trace`` spelling is taken by pytest's built-in debugger hook.)

``--breakdown [OUT.json]`` (default ``BENCH_breakdown.json``, env
``REPRO_BREAKDOWN``) additionally runs the critical-path profiler over
every recorded request window (offload ``call:`` spans and the
``mark_request`` samples benchmarks emit) and writes the per-phase
latency attributions — what CI gates per-component regressions on.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import _common  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out", default=None, metavar="OUT.json",
        help="record a Chrome/Perfetto trace of every simulated NIC "
             "to this file")
    parser.addoption(
        "--breakdown", nargs="?", const="BENCH_breakdown.json",
        default=None, metavar="OUT.json",
        help="write per-request critical-path phase attributions "
             "(default BENCH_breakdown.json)")
    parser.addoption(
        "--journal", default=None, metavar="OUT.jsonl",
        help="record a flight-recorder journal of every simulated "
             "NIC to this file (see tools/trace_diff.py)")
    parser.addoption(
        "--history", nargs="?", const="BENCH_history.json",
        default=None, metavar="FILE",
        help="append this run's benchmark results to a history file "
             "(default BENCH_history.json, see tools/bench_history.py)")
    parser.addoption(
        "--telemetry", default=None, metavar="OUT.jsonl",
        help="record windowed fleet telemetry of every simulated bed "
             "to this JSONL file (see tools/fleet_top.py --input)")


def pytest_configure(config):
    path = config.getoption("--trace-out", default=None)
    if path:
        _common.set_trace_output(path)
    breakdown = config.getoption("--breakdown", default=None)
    if breakdown:
        _common.set_breakdown_output(breakdown)
    journal = config.getoption("--journal", default=None)
    if journal:
        _common.set_journal_output(journal)
    history = config.getoption("--history", default=None)
    if history:
        _common.set_history_output(history)
    telemetry = config.getoption("--telemetry", default=None)
    if telemetry:
        _common.set_telemetry_output(telemetry)


def pytest_unconfigure(config):
    _common.flush_trace()
    _common.flush_history()
