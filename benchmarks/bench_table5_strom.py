"""Table 5: RedN vs the StRoM FPGA SmartNIC on hash gets.

Paper (StRoM numbers quoted from [39], as the authors did not have the
FPGA — we quote the same constants):

    64B : RedN 5.7 us median / 6.9 us p99 ; StRoM ~7 / ~7
    4KB : RedN 6.7 us median / 8.4 us p99 ; StRoM ~12 / ~13

The takeaway: a commodity RNIC running self-modifying chains matches or
beats a 156 MHz FPGA SmartNIC that pays two PCIe round trips per get.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import Testbed, print_comparison, run_once, within_factor

from repro.apps import MemcachedServer
from repro.bench.stats import percentile
from repro.redn.offload import OffloadClient

PAPER = {
    (64, "median"): 5.7,
    (64, "p99"): 6.9,
    (4096, "median"): 6.7,
    (4096, "p99"): 8.4,
}

STROM = {  # quoted from StRoM [39], same as the paper's Table 5
    (64, "median"): 7.0,
    (64, "p99"): 7.0,
    (4096, "median"): 12.0,
    (4096, "p99"): 13.0,
}

SAMPLES = 60
KEY = 0x10


def measure(value_size: int):
    bed = Testbed(num_clients=1, server_memory=512 * 1024 * 1024)
    store = MemcachedServer(bed.server, slab_size=128 * 1024 * 1024)
    store.set(KEY, b"z" * value_size, force_bucket=0)
    offload, conn = store.attach_get_offload(
        bed.clients[0].nic, bed.client_pd(0),
        max_instances=SAMPLES + 2)
    offload.post_instances(SAMPLES + 1)
    client = OffloadClient(conn, bed.client_verbs(0))

    def run():
        latencies = []
        for index in range(SAMPLES + 1):
            result = yield from client.call(offload.payload_for(KEY))
            assert result.ok
            if index:
                latencies.append(result.latency_ns)
        return latencies

    samples = bed.run(run())
    return (percentile(samples, 0.50) / 1000.0,
            percentile(samples, 0.99) / 1000.0)


def scenario():
    results = {}
    for size in (64, 4096):
        median, p99 = measure(size)
        results[f"{size}/median"] = median
        results[f"{size}/p99"] = p99
    return results


def bench_table5(benchmark):
    results = run_once(benchmark, scenario)
    rows = []
    for size in (64, 4096):
        for stat in ("median", "p99"):
            rows.append((f"{size}B", stat,
                         f"{results[f'{size}/{stat}']:.1f}",
                         f"{PAPER[(size, stat)]:.1f}",
                         f"~{STROM[(size, stat)]:.0f}"))
    print_comparison(
        "Table 5 — hash get latency vs StRoM",
        ["IO", "stat", "RedN measured us", "RedN paper us",
         "StRoM [39] us"], rows)

    for (size, stat), reference in PAPER.items():
        measured = results[f"{size}/{stat}"]
        assert within_factor(measured, reference, 1.35), \
            f"{size}/{stat}: {measured:.1f} vs {reference}"
    # The comparison's point: RedN at or below the FPGA SmartNIC.
    assert results["64/median"] <= STROM[(64, "median")] * 1.05
    assert results["4096/median"] <= STROM[(4096, "median")]
