"""Simulator wall-clock speed: events/second through the full stack.

Unlike every other benchmark in this directory — which report *simulated*
nanoseconds and must match the paper — this one measures how fast the
simulator itself runs on the host CPU. It replays the two canonical
workloads from ``tools/perf_smoke.py`` (the Fig 13 offload-call replay
and the Table 3 flood) and reports kernel events per CPU-second.

Marked ``bench`` so the wall-clock-sensitive run can be split from the
deterministic tier-1 suite: ``pytest -m "not bench"`` skips it.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from _common import print_comparison, run_once

from perf_smoke import WORKLOADS, run_workload

pytestmark = pytest.mark.bench


def bench_simspeed(benchmark):
    def scenario():
        results = {}
        for name in WORKLOADS:
            measured = run_workload(name, reps=3)
            results[f"{name}_events_per_sec"] = measured["events_per_sec"]
            results[f"{name}_events"] = measured["events"]
            results[f"{name}_cpu_seconds"] = measured["cpu_seconds"]
        return results

    result = run_once(benchmark, scenario)
    rows = [(name,
             f"{result[f'{name}_events_per_sec']:,d}",
             result[f"{name}_events"],
             f"{result[f'{name}_cpu_seconds']:.3f}")
            for name in WORKLOADS]
    print_comparison(
        "Simulator speed — kernel events per CPU-second",
        ["workload", "events/s", "events", "best CPU s"], rows)
    for name in WORKLOADS:
        assert result[f"{name}_events_per_sec"] > 0
