"""Figure 15: get latency under server CPU contention (paper §5.5).

Setup: one reader issues gets while 1..16 writer clients hammer the
server with closed-loop sets (distinct 10K-key sets, accessed
sequentially). Two-sided gets queue behind the writers at the server
CPU, so average and p99 explode with the writer count; RedN's
NIC-served gets never touch the CPU and stay below ~7 us — at 16
writers the paper reports a 35x p99 gap.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import Testbed, print_comparison, run_once

from repro.apps import (
    ClosedLoopClient,
    MemcachedServer,
    RpcCosts,
    RpcServer,
    STATUS_OK,
)
from repro.bench.stats import LatencyRecorder, percentile
from repro.redn.offload import OffloadClient

WRITER_COUNTS = (1, 2, 4, 8, 16)
READER_OPS = 150
VALUE_SIZE = 64
READER_KEYS = [0x9000 + i for i in range(16)]

#: Two-sided server under multi-tenant contention: scheduler jitter on
#: service times (arbitrary context switches, §5.5).
CONTENDED_COSTS = RpcCosts(parse_ns=600, lookup_ns=1200, store_ns=1800,
                           respond_ns=600, service_jitter=1.5)


def _spawn_writers(bed, server, count):
    """Closed-loop set generators, each with a private key range."""
    stop = {"flag": False}
    for index in range(count):
        writer = server.connect(bed.clients[1].nic, bed.client_pd(1))
        base = 0x100000 + index * 10_000

        def loop(writer=writer, base=base):
            cursor = 0
            while not stop["flag"]:
                key = base + (cursor % 10_000)
                cursor += 1
                yield from writer.set(key, b"w" * VALUE_SIZE)

        bed.sim.process(loop(), name=f"writer{index}")
    return stop


def measure_two_sided(writers: int):
    bed = Testbed(num_clients=2)
    store = MemcachedServer(bed.server, num_buckets=65536,
                            slab_size=64 * 1024 * 1024)
    server = RpcServer(store, mode="polling", workers=1,
                       costs=CONTENDED_COSTS)
    reader = server.connect(bed.clients[0].nic, bed.client_pd(0))
    for key in READER_KEYS:
        store.set(key, b"r" * VALUE_SIZE)
    server.start()
    stop = _spawn_writers(bed, server, writers)

    recorder = LatencyRecorder("two-sided")

    def reader_loop():
        yield bed.sim.timeout(200_000)   # writers ramp up
        for index in range(READER_OPS):
            key = READER_KEYS[index % len(READER_KEYS)]
            status, _value, latency = yield from reader.get(key)
            assert status == STATUS_OK
            recorder.record(latency)
        stop["flag"] = True

    bed.run(reader_loop(), until=30_000_000_000)
    return recorder.avg_us, recorder.p99_us


def measure_redn(writers: int):
    bed = Testbed(num_clients=2)
    store = MemcachedServer(bed.server, num_buckets=65536,
                            slab_size=64 * 1024 * 1024)
    # The same writer load hits the CPU-served set path...
    server = RpcServer(store, mode="polling", workers=1,
                       costs=CONTENDED_COSTS)
    for key in READER_KEYS:
        store.set(key, b"r" * VALUE_SIZE)
    # ...while the reader's gets are served by the NIC.
    offload, conn = store.attach_get_offload(
        bed.clients[0].nic, bed.client_pd(0),
        max_instances=READER_OPS + 4)
    offload.post_instances(READER_OPS + 2)
    client = OffloadClient(conn, bed.client_verbs(0))
    server.start()
    stop = _spawn_writers(bed, server, writers)

    recorder = LatencyRecorder("redn")

    def reader_loop():
        yield bed.sim.timeout(200_000)
        for index in range(READER_OPS):
            key = READER_KEYS[index % len(READER_KEYS)]
            result = yield from client.call(offload.payload_for(key),
                                            timeout_ns=60_000_000)
            assert result.ok
            recorder.record(result.latency_ns)
        stop["flag"] = True

    bed.run(reader_loop(), until=30_000_000_000)
    return recorder.avg_us, recorder.p99_us


def scenario():
    results = {}
    for writers in WRITER_COUNTS:
        two_avg, two_p99 = measure_two_sided(writers)
        redn_avg, redn_p99 = measure_redn(writers)
        results[f"two/{writers}/avg"] = two_avg
        results[f"two/{writers}/p99"] = two_p99
        results[f"redn/{writers}/avg"] = redn_avg
        results[f"redn/{writers}/p99"] = redn_p99
    return results


def bench_fig15(benchmark):
    results = run_once(benchmark, scenario)
    rows = [(writers,
             f"{results[f'two/{writers}/avg']:.1f}",
             f"{results[f'two/{writers}/p99']:.1f}",
             f"{results[f'redn/{writers}/avg']:.1f}",
             f"{results[f'redn/{writers}/p99']:.1f}")
            for writers in WRITER_COUNTS]
    print_comparison(
        "Fig 15 — get latency under writer contention (us)",
        ["writers", "2-sided avg", "2-sided p99", "RedN avg",
         "RedN p99"], rows)
    gap = (results["two/16/p99"] / results["redn/16/p99"])
    print(f"\n  p99 gap at 16 writers: {gap:.0f}x (paper: 35x)")

    # RedN is contention-immune: avg and p99 stay below ~7 us at any
    # writer count (the paper's exact claim).
    for writers in WRITER_COUNTS:
        assert results[f"redn/{writers}/avg"] < 7.0
        assert results[f"redn/{writers}/p99"] < 8.5
    # Two-sided inflates with writers; at 16 the p99 gap is large.
    assert (results["two/16/avg"] > 3 * results["two/1/avg"])
    assert gap >= 10, gap
