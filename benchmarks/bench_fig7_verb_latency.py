"""Figure 7: latency of individual RDMA verbs at 64B IO.

Paper: remote NOOP 1.21 us (doorbell+fetch dominate), WRITE 1.6 us
(posted PCIe), READ / CAS / ADD ~1.8 us (non-posted PCIe round trip),
calc verbs (MAX) slightly above; remote-vs-loopback NOOP difference
estimates the network at ~0.25 us RTT.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import (
    Testbed,
    mark_request,
    print_comparison,
    run_once,
    within_factor,
)

from repro.ibv import (
    VerbsContext,
    wr_calc,
    wr_cas,
    wr_fetch_add,
    wr_noop,
    wr_read,
    wr_write,
)
from repro.bench.stats import summarize
from repro.nic import Opcode

PAPER_US = {
    "NOOP": 1.21,
    "WRITE": 1.60,
    "READ": 1.80,
    "ADD": 1.80,
    "CAS": 1.80,
    "MAX": 1.85,
    "NOOP (loopback)": 0.96,
}

SAMPLES = 50
IO_SIZE = 64


def _measure(bed, qp, verbs, make_wqe, label):
    def run():
        latencies = []
        for _ in range(SAMPLES):
            start = bed.sim.now
            yield from verbs.execute_sync_checked(qp, make_wqe())
            mark_request(bed, f"verb:{label}", start)
            latencies.append(bed.sim.now - start
                             - verbs.post_overhead_ns)
        return latencies

    return summarize(bed.run(run()))["avg"] / 1000.0


def scenario():
    bed = Testbed(num_clients=1)
    server_proc = bed.server.spawn_process("target")
    server_pd = server_proc.create_pd()
    verbs = VerbsContext(bed.sim, name="bench-verbs")

    server_qp = server_proc.create_qp(server_pd, name="srv")
    client_qp = bed.clients[0].nic.create_qp(bed.client_pd(0),
                                             name="cli")
    server_qp.connect(client_qp)

    local_buf = bed.clients[0].memory.alloc(IO_SIZE, owner="client")
    remote = server_proc.alloc(IO_SIZE, label="target")
    remote_mr = server_pd.register(remote)

    results = {}
    results["WRITE"] = _measure(bed, client_qp, verbs, lambda: wr_write(
        local_buf.addr, IO_SIZE, remote.addr, remote_mr.rkey), "WRITE")
    results["READ"] = _measure(bed, client_qp, verbs, lambda: wr_read(
        local_buf.addr, IO_SIZE, remote.addr, remote_mr.rkey), "READ")
    results["CAS"] = _measure(bed, client_qp, verbs, lambda: wr_cas(
        remote.addr, remote_mr.rkey, 0, 1,
        result_laddr=local_buf.addr), "CAS")
    results["ADD"] = _measure(bed, client_qp, verbs,
                              lambda: wr_fetch_add(
                                  remote.addr, remote_mr.rkey, 1,
                                  result_laddr=local_buf.addr), "ADD")
    results["MAX"] = _measure(bed, client_qp, verbs, lambda: wr_calc(
        Opcode.MAX, remote.addr, remote_mr.rkey, 5,
        result_laddr=local_buf.addr), "MAX")
    results["NOOP"] = _measure(bed, client_qp, verbs,
                               lambda: wr_noop(signaled=True), "NOOP")

    # Loopback NOOP (right-hand side of Fig 7): network cost estimate.
    lo_a, _lo_b = bed.server.nic.create_loopback_pair(server_pd)
    results["NOOP (loopback)"] = _measure(bed, lo_a, verbs,
                                          lambda: wr_noop(signaled=True),
                                          "NOOP-loopback")
    results["network_rtt_us"] = results["NOOP"] - results["NOOP (loopback)"]
    return results


def bench_fig7(benchmark):
    results = run_once(benchmark, scenario)
    rows = [(verb, f"{results[verb]:.2f}", f"{PAPER_US[verb]:.2f}")
            for verb in PAPER_US]
    rows.append(("network RTT", f"{results['network_rtt_us']:.2f}",
                 "0.25"))
    print_comparison("Fig 7 — verb latency (64B IO)",
                     ["verb", "measured us", "paper us"], rows)

    for verb, reference in PAPER_US.items():
        assert within_factor(results[verb], reference, 1.25), \
            f"{verb}: {results[verb]:.2f}us vs paper {reference}us"
    # Ordering relations the paper reports.
    assert results["NOOP"] < results["WRITE"] < results["READ"] + 0.2
    assert 0.15 <= results["network_rtt_us"] <= 0.40
