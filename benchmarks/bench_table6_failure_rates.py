"""Table 6: component failure rates and what they buy an offload.

The table itself is a literature survey (the paper cites [8, 37]); we
quote the same constants and add the quantitative reading the paper
implies: a service that only needs NIC+DRAM (a hull-parented RedN
offload) is an order of magnitude less likely to be down than one that
also needs a healthy OS — which the Fig 16 experiment demonstrates
dynamically.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import print_comparison, run_once

from repro.net import (
    TABLE6_COMPONENTS,
    availability_from_mttf,
    offload_availability,
)

PAPER_ROWS = {
    "OS": (41.9, 20_906, "99%"),
    "DRAM": (39.5, 22_177, "99%"),
    "NIC": (1.00, 876_000, "99.99%"),
    "NVM": (1.00, 2_000_000, "99.99%"),
}


def scenario():
    results = {}
    for name, component in TABLE6_COMPONENTS.items():
        results[f"{name}/afr"] = component.afr_percent
        results[f"{name}/mttf"] = component.mttf_hours
        results[f"{name}/avail"] = component.availability
    results["cpu_path_availability"] = offload_availability(
        depends_on_os=True)
    results["nic_path_availability"] = offload_availability(
        depends_on_os=False)
    return results


def bench_table6(benchmark):
    results = run_once(benchmark, scenario)
    rows = []
    for name, (afr, mttf, nines) in PAPER_ROWS.items():
        rows.append((name, f"{results[f'{name}/afr']:.2f}%",
                     f"{results[f'{name}/mttf']:,.0f}h",
                     f"{results[f'{name}/avail']:.5f}", nines))
    print_comparison(
        "Table 6 — component failure rates (survey constants)",
        ["component", "AFR", "MTTF", "derived avail.", "paper"], rows)

    cpu_path = results["cpu_path_availability"]
    nic_path = results["nic_path_availability"]
    print(f"\n  CPU-served path (OS+DRAM+NIC): {cpu_path:.6f}")
    print(f"  NIC-served path (DRAM+NIC):    {nic_path:.6f}")
    print(f"  downtime ratio: "
          f"{(1 - cpu_path) / (1 - nic_path):.1f}x less for the "
          f"offload")

    # Constants quoted faithfully.
    for name, (afr, mttf, _nines) in PAPER_ROWS.items():
        assert results[f"{name}/afr"] == afr
        assert results[f"{name}/mttf"] == mttf
    # The paper's argument: NIC MTTF is ~an order of magnitude above
    # OS/DRAM, so dropping the OS dependency slashes expected downtime.
    assert results["NIC/mttf"] > 10 * results["OS/mttf"]
    assert (1 - cpu_path) > 1.5 * (1 - nic_path)
