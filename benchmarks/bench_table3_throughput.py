"""Table 3: throughput of verbs and RedN constructs (one CX-5 port).

Paper:

    CAS    8.4 M/s   (serialized by PCIe atomic concurrency control)
    ADD    ~CAS      (the text: atomics are ~8x below regular verbs)
    READ   65 M/s
    WRITE  63 M/s
    MAX    63 M/s    (calc verbs don't pay atomic serialization)
    if                0.7 M/s   (doorbell ordering binds)
    while (unrolled)  0.7 M/s   (same per-iteration chain as if)
    while (recycled)  0.3 M/s   (Table 2's extra verbs per lap)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import (
    Testbed,
    measure_flood_rate,
    print_comparison,
    run_once,
    within_factor,
)

from repro.ibv import (
    wr_calc,
    wr_cas,
    wr_fetch_add,
    wr_read,
    wr_recv,
    wr_send,
    wr_write,
)
from repro.nic import Opcode, Sge
from repro.redn import ProgramBuilder, RecycledLoop, RednContext

PAPER_MOPS = {
    "CAS": 8.4,
    "ADD": 8.4,
    "READ": 65.0,
    "WRITE": 63.0,
    "MAX": 63.0,
    "if": 0.7,
    "while (unrolled)": 0.7,
    "while (recycled)": 0.3,
}

IO_SIZE = 64


def _verb_rig(bed):
    proc = bed.server.spawn_process("sink")
    pd = proc.create_pd()
    sink = proc.alloc(4096, label="sink")
    sink_mr = pd.register(sink)
    qps = []
    for index in range(16):
        server_qp = proc.create_qp(pd, name=f"t3s{index}")
        client_qp = bed.clients[0].nic.create_qp(
            bed.client_pd(0), send_slots=512, name=f"t3c{index}")
        server_qp.connect(client_qp)
        qps.append(client_qp)
    src = bed.clients[0].memory.alloc(IO_SIZE, owner="client")
    return qps, src, sink, sink_mr


def _measure_verbs(bed):
    qps, src, sink, sink_mr = _verb_rig(bed)
    makers = {
        "WRITE": lambda qp: wr_write(src.addr, IO_SIZE, sink.addr,
                                     sink_mr.rkey, signaled=False),
        "READ": lambda qp: wr_read(src.addr, IO_SIZE, sink.addr,
                                   sink_mr.rkey, signaled=False),
        "CAS": lambda qp: wr_cas(sink.addr, sink_mr.rkey, 0, 1,
                                 signaled=False),
        "ADD": lambda qp: wr_fetch_add(sink.addr, sink_mr.rkey, 1,
                                       signaled=False),
        "MAX": lambda qp: wr_calc(Opcode.MAX, sink.addr, sink_mr.rkey,
                                  1, signaled=False),
    }
    ops = {"WRITE": 768, "READ": 768, "MAX": 768, "CAS": 384,
           "ADD": 384}
    return {name: measure_flood_rate(bed, qps, maker,
                                     ops_per_qp=ops[name]) / 1e6
            for name, maker in makers.items()}


def _make_triggered_ifs(ctx, builder, scratch, scratch_mr, lanes,
                        instances):
    """``lanes`` trigger-driven if-chains, ``instances`` deep each.

    Each instance: SEND trigger -> RECV injects the operand -> CAS
    tests it -> branch WRITE fires. Returns (trigger QPs, branch CQ).
    """
    trigger_qps = []
    branch_queues = []
    for lane in range(lanes):
        worker = builder.worker_queue(slots=4 * instances + 8,
                                      name=f"if-w{lane}")
        ctl = builder.control_queue(slots=8 * instances + 8,
                                    name=f"if-ctl{lane}")
        server_qp, client_qp = ctx.nic.create_loopback_pair(
            ctx.pd, recv_slots=4 * instances + 8, name=f"if-trig{lane}")
        branches = builder.worker_queue(slots=instances + 8,
                                        name=f"if-b{lane}")
        for instance in range(instances):
            live = wr_write(scratch.addr, 8, scratch.addr + 8,
                            scratch_mr.rkey)
            live.wr_id = 1
            branch = builder.template(branches, live,
                                      tag=f"if{lane}.{instance}")
            builder.wait(ctl, server_qp.recv_wq.cq, instance + 1)
            refs = builder.emit_if(ctl, worker, branch, compare_id=1,
                                   tag=f"if{lane}.{instance}")
            server_qp.post_recv(wr_recv(
                sges=[Sge(refs.cas.field_addr("operand0"), 8)]))
        trigger_qps.append(client_qp)
        branch_queues.append(branches)
    return trigger_qps, branch_queues


def _measure_if(bed, instances=96, lanes=4):
    ctx = RednContext(bed.server.nic,
                      bed.server.spawn_process("ifsrv").create_pd(),
                      owner="ifsrv")
    builder = ProgramBuilder(ctx, name="t3if")
    scratch, scratch_mr = ctx.alloc_registered(64, label="t3-scratch")
    trigger_qps, branch_queues = _make_triggered_ifs(
        ctx, builder, scratch, scratch_mr, lanes, instances)

    sim = bed.sim

    def trigger_all(qp):
        for _ in range(instances):
            qp.post_send(wr_send(scratch.addr, 8, signaled=False))
            yield sim.timeout(100)   # posting cadence, never the cap

    def run():
        start = sim.now
        procs = [sim.process(trigger_all(qp)) for qp in trigger_qps]
        done = [queue.cq.wait_for_count(instances)
                for queue in branch_queues]
        for event in done:
            if not event.triggered:
                yield event
        total = lanes * instances
        return total / ((sim.now - start) / 1e9)

    return bed.run(run()) / 1e6


def _measure_recycled(bed, laps=60, lanes=4):
    ctx = RednContext(bed.server.nic,
                      bed.server.spawn_process("recsrv").create_pd(),
                      owner="recsrv")
    builder = ProgramBuilder(ctx, name="t3rec")
    scratch, scratch_mr = ctx.alloc_registered(64, label="rec-scratch")
    sim = bed.sim

    loops = []
    trigger_qps = []
    for lane in range(lanes):
        server_qp, client_qp = ctx.nic.create_loopback_pair(
            ctx.pd, recv_slots=4 * laps + 8, name=f"rec-trig{lane}")
        resp_lane = builder.worker_queue(slots=4, name=f"rec-l{lane}")
        resp = builder.template(
            resp_lane, wr_write(scratch.addr, 8, scratch.addr + 8,
                                scratch_mr.rkey), tag="while.resp")
        loop = RecycledLoop(builder, server_qp.recv_wq.cq,
                            name=f"rec{lane}")
        loop.body(wr_cas(resp.field_addr("ctrl"), resp_lane.rkey, 0, 0,
                         signaled=True), tag="while.cas")
        loop.restore(resp, offset=0, length=8)
        loop.restore(resp, offset=8, length=56)
        loop.rearm(resp_lane)
        loop.rearm(server_qp.recv_wq)   # recycle the trigger ring
        loop.build()
        loop.start()
        for _ in range(laps):
            server_qp.post_recv(wr_recv(scratch.addr + 16, 8))
        loops.append(loop)
        trigger_qps.append(client_qp)

    def trigger_all(qp):
        for _ in range(laps):
            qp.post_send(wr_send(scratch.addr, 8, signaled=False))
            yield sim.timeout(100)

    def run():
        start = sim.now
        for qp in trigger_qps:
            sim.process(trigger_all(qp))
        target = laps * loops[0].ring_wrs
        while any(loop.ring.wq.fetched_count < target
                  for loop in loops):
            yield sim.timeout(20_000)
        total = lanes * laps
        return total / ((sim.now - start) / 1e9)

    return bed.run(run()) / 1e6


def scenario():
    bed = Testbed(num_clients=1)
    results = _measure_verbs(bed)
    results["if"] = _measure_if(bed)
    # Per the paper, unrolled while iterations are the same chain as
    # if: "their throughput is identical" (§5.1.3).
    results["while (unrolled)"] = results["if"]
    results["while (recycled)"] = _measure_recycled(bed)
    return results


def bench_table3(benchmark):
    results = run_once(benchmark, scenario)
    rows = [(name, f"{results[name]:.2f}", f"{PAPER_MOPS[name]:.1f}")
            for name in PAPER_MOPS]
    print_comparison("Table 3 — verb/construct throughput (1 port)",
                     ["operation", "measured M/s", "paper M/s"], rows)

    for name, reference in PAPER_MOPS.items():
        assert within_factor(results[name], reference, 1.6), \
            f"{name}: {results[name]:.2f}M vs {reference}M"
    # Structural relations the paper highlights.
    assert results["WRITE"] > 6 * results["CAS"]      # atomics ~8x lower
    assert results["MAX"] > 6 * results["CAS"]        # calc != atomic
    assert results["if"] < results["CAS"] / 5         # doorbell binds
    assert results["while (recycled)"] < results["if"]
