"""Figure 13: latency of walking linked lists (range sweep).

Paper setup: list of 8 nodes, 48-bit keys, 64B values; the requested
key sits uniformly within [1..range]. RedN (no break) beats one- and
two-sided baselines at every range up to 8 (up to 2x); RedN+break is
slightly slower per hit (break-condition overhead) but executes ~30
WRs on average instead of >65% more without breaks.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import Testbed, mark_request, print_comparison, run_once

from repro.apps import RpcServer, STATUS_OK
from repro.bench.stats import summarize
from repro.datastructs import LIST_NODE, LinkedList, SlabStore
from repro.ibv import VerbsContext, wr_read
from repro.redn import RednContext
from repro.redn.offload import OffloadClient, OffloadConnection
from repro.offloads.list_traversal import ListTraversalOffload

LIST_SIZE = 8
RANGES = (1, 2, 4, 6, 8)
VALUE_SIZE = 64
KEYS = [0x100 + i for i in range(LIST_SIZE)]
SAMPLES_PER_RANGE = 8


def _build_list(bed, owner_proc):
    pd = owner_proc.create_pd()
    slab_alloc = owner_proc.alloc(4 * 1024 * 1024, label="slab")
    node_alloc = owner_proc.alloc(64 * 1024, label="nodes")
    data_mr = pd.register(node_alloc)
    slab_mr = pd.register(slab_alloc)
    slab = SlabStore(bed.server.memory, slab_alloc)
    lst = LinkedList(bed.server.memory, node_alloc, slab)
    for key in KEYS:
        lst.append(key, bytes([key & 0xFF]) * VALUE_SIZE)
    return pd, lst, data_mr, slab_mr


def _keys_for_range(key_range):
    """Deterministic uniform choice over positions [1..range]."""
    count = SAMPLES_PER_RANGE
    return [KEYS[i % key_range] for i in range(count)]


def measure_redn(key_range: int, use_break: bool) -> dict:
    bed = Testbed(num_clients=1)
    proc = bed.server.spawn_process("list-server")
    pd, lst, data_mr, _slab_mr = _build_list(bed, proc)
    ctx = RednContext(bed.server.nic, pd, process=proc)
    conn = OffloadConnection(ctx, bed.clients[0].nic, bed.client_pd(0),
                             name="f13")
    offload = ListTraversalOffload(ctx, lst, data_mr, conn,
                                   max_nodes=LIST_SIZE,
                                   use_break=use_break)
    client = OffloadClient(conn, bed.client_verbs(0))
    keys = _keys_for_range(key_range)
    if not use_break:
        offload.post_instances(len(keys))

    def run():
        latencies = []
        traversal_wrs = 0
        for index, key in enumerate(keys):
            if use_break:
                offload.post_instances(1)
            wr_start = bed.server.nic.stats.get("total_wrs", 0)
            call_start = bed.sim.now
            result = yield from client.call(offload.payload_for(key),
                                            timeout_ns=60_000_000)
            assert result.ok, (key_range, key)
            mark_request(
                bed,
                f"fig13:{'break' if use_break else 'plain'}:"
                f"r{key_range}", call_start)
            latencies.append(result.latency_ns)
            if use_break:
                # Break stops the chain at the hit: everything the NIC
                # executed for this traversal has happened by now. The
                # host teardown that follows (queue destruction, lane
                # defuse-flush) is not traversal work.
                traversal_wrs += (
                    bed.server.nic.stats.get("total_wrs", 0) - wr_start)
                offload.finish_request(index)
                yield bed.sim.timeout(60_000)
            else:
                # Without break every posted iteration executes even
                # after the response left — count the full drain
                # (the paper's ">65% more WRs").
                yield bed.sim.timeout(60_000)
                traversal_wrs += (
                    bed.server.nic.stats.get("total_wrs", 0) - wr_start)
        return latencies, traversal_wrs / len(keys)

    latencies, wrs_per_op = bed.run(run())
    return {"avg_us": summarize(latencies)["avg"] / 1000.0,
            "wrs_per_op": wrs_per_op}


def measure_one_sided(key_range: int) -> dict:
    """Client-side pointer chase: one READ per node + one for the
    value (FaRM/Pilaf style, §5.3)."""
    bed = Testbed(num_clients=1)
    proc = bed.server.spawn_process("list-server")
    pd, lst, data_mr, slab_mr = _build_list(bed, proc)
    server_qp = proc.create_qp(pd, name="os-s")
    client_qp = bed.clients[0].nic.create_qp(bed.client_pd(0),
                                             name="os-c")
    server_qp.connect(client_qp)
    verbs = VerbsContext(bed.sim)
    client_mem = bed.clients[0].memory
    node_buf = client_mem.alloc(32, owner="client")
    value_buf = client_mem.alloc(VALUE_SIZE, owner="client")
    per_op_overhead = 2_500   # same client stack as the KV baseline

    def one_get(key):
        addr = lst.head
        while addr:
            yield from verbs.execute_sync_checked(
                client_qp, wr_read(node_buf.addr, 32, addr,
                                   data_mr.rkey))
            yield bed.sim.timeout(per_op_overhead)
            record = LIST_NODE.unpack(client_mem.read(node_buf.addr, 32))
            if record["key"] == key:
                yield from verbs.execute_sync_checked(
                    client_qp, wr_read(value_buf.addr, record["vlen"],
                                       record["valptr"], slab_mr.rkey))
                yield bed.sim.timeout(per_op_overhead)
                return True
            addr = record["next"]
        return False

    def run():
        latencies = []
        for key in _keys_for_range(key_range):
            start = bed.sim.now
            found = yield from one_get(key)
            assert found
            latencies.append(bed.sim.now - start)
        return latencies

    return {"avg_us": summarize(bed.run(run()))["avg"] / 1000.0}


class _ListStore:
    """Duck-typed store adapter: RPC gets served by a host list walk."""

    def __init__(self, host, process, pd, lst):
        self.host = host
        self.process = process
        self.pd = pd
        self.list = lst

    def get(self, key):
        return self.list.find(key)

    def set(self, key, value):
        raise NotImplementedError("read-only benchmark store")

    def delete(self, key):
        raise NotImplementedError


def measure_two_sided(key_range: int) -> dict:
    bed = Testbed(num_clients=1)
    proc = bed.server.spawn_process("list-server")
    pd, lst, _data_mr, _slab_mr = _build_list(bed, proc)
    store = _ListStore(bed.server, proc, pd, lst)
    # Event-driven RPC: a per-data-structure service does not get a
    # dedicated busy-polling core; it pays a wake-up per request. Its
    # latency is range-independent (host pointer chases are ns-scale),
    # which is what creates the paper's crossover at range ~8.
    server = RpcServer(store, mode="event", workers=1)
    client = server.connect(bed.clients[0].nic, bed.client_pd(0))
    server.start()

    def run():
        latencies = []
        for key in _keys_for_range(key_range):
            status, _value, latency = yield from client.get(key)
            assert status == STATUS_OK
            latencies.append(latency)
        return latencies

    return {"avg_us": summarize(bed.run(run()))["avg"] / 1000.0}


def scenario():
    results = {}
    for key_range in RANGES:
        results[f"redn/{key_range}"] = measure_redn(key_range, False)
        results[f"redn-break/{key_range}"] = measure_redn(key_range,
                                                          True)
        results[f"one-sided/{key_range}"] = measure_one_sided(key_range)
        results[f"two-sided/{key_range}"] = measure_two_sided(key_range)
    flat = {}
    for name, value in results.items():
        flat[f"{name}/avg_us"] = value["avg_us"]
        if "wrs_per_op" in value:
            flat[f"{name}/wrs"] = value["wrs_per_op"]
    return flat


def bench_fig13(benchmark):
    results = run_once(benchmark, scenario)
    systems = ("redn", "redn-break", "one-sided", "two-sided")
    rows = [(key_range,
             *(f"{results[f'{system}/{key_range}/avg_us']:.2f}"
               for system in systems))
            for key_range in RANGES]
    print_comparison("Fig 13 — list walk latency by key range (us)",
                     ("range", *systems), rows)
    avg_break_wrs = sum(results[f"redn-break/{r}/wrs"]
                        for r in RANGES) / len(RANGES)
    avg_plain_wrs = sum(results[f"redn/{r}/wrs"]
                        for r in RANGES) / len(RANGES)
    print(f"\n  WRs/op: break {avg_break_wrs:.0f} vs plain "
          f"{avg_plain_wrs:.0f} (paper: ~30 vs >65% more)")

    for key_range in RANGES:
        redn = results[f"redn/{key_range}/avg_us"]
        brk = results[f"redn-break/{key_range}/avg_us"]
        one_sided = results[f"one-sided/{key_range}/avg_us"]
        two_sided = results[f"two-sided/{key_range}/avg_us"]
        # RedN beats one-sided at every range, and two-sided until the
        # crossover near range 8 (the paper: "for all list ranges
        # until 8").
        assert redn < one_sided, (key_range, redn, one_sided)
        if key_range < 8:
            assert redn < two_sided * 1.05, (key_range, redn, two_sided)
        # The break variant pays per-iteration overhead.
        assert brk >= redn * 0.95
    # ...but saves WRs overall (paper: plain uses >65% more).
    assert avg_plain_wrs > 1.3 * avg_break_wrs
    # One-sided degrades fastest with range (one RTT per node).
    slope_os = (results["one-sided/8/avg_us"]
                - results["one-sided/1/avg_us"])
    slope_redn = (results["redn/8/avg_us"] - results["redn/1/avg_us"])
    assert slope_os > slope_redn
