"""Table 4: NIC throughput of offloaded hash lookups and bottlenecks.

Paper (ConnectX-5):

    IO <= 1KB : 500 K ops/s single port, 1 M dual   (NIC PU bound)
    IO = 64KB : 180 K single port (IB wire, ~92 Gb/s),
                190 K dual port  (PCIe 3.0 x16 bound)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import Testbed, print_comparison, run_once, within_factor

from repro.apps import MemcachedServer
from repro.ibv import wr_recv, wr_send
from repro.offloads.hash_lookup import HashGetOffload
from repro.redn.offload import OffloadConnection

PAPER_KOPS = {
    ("small", 1): 500,
    ("small", 2): 1000,
    ("64KB", 1): 180,
    ("64KB", 2): 190,
}


def _measure(value_size: int, ports: int, lookups_per_conn: int,
             conns_per_port: int = 4) -> float:
    """Open-loop flood from several client connections per port —
    single chains are latency-bound; the port resources only saturate
    with concurrent chains, as in any real throughput test."""
    bed = Testbed(num_clients=1, nic_ports=ports,
                  server_memory=512 * 1024 * 1024)
    store = MemcachedServer(bed.server, num_buckets=1024,
                            slab_size=128 * 1024 * 1024)
    key = 0x42
    store.set(key, b"v" * value_size, force_bucket=0)

    client_nic = bed.clients[0].nic
    client_pd = bed.client_pd(0)
    offloads = []
    for port in range(ports):
        for lane in range(conns_per_port):
            conn = OffloadConnection(
                store.ctx, client_nic, client_pd,
                recv_slots=4 * lookups_per_conn + 16,
                send_slots=2 * lookups_per_conn + 16,
                name=f"t4p{port}l{lane}", server_port=port)
            offload = HashGetOffload(
                store.ctx, store.table, store.table_mr, conn,
                parallel=False, buckets=1, port_index=port,
                max_instances=lookups_per_conn + 4,
                name=f"t4get{port}l{lane}")
            offload.post_instances(lookups_per_conn)
            for _ in range(lookups_per_conn + 8):
                conn.client_qp.post_recv(wr_recv())
            offloads.append((offload, conn))

    sim = bed.sim
    request_buf = client_nic.memory.alloc(64, owner="client")
    payload = offloads[0][0].payload_for(key)
    client_nic.memory.write(request_buf.addr, payload)

    def flood(conn):
        for _ in range(lookups_per_conn):
            conn.client_qp.post_send(
                wr_send(request_buf.addr, len(payload), signaled=False))
            yield sim.timeout(200)   # open-loop posting cadence

    def run():
        start = sim.now
        for offload, conn in offloads:
            sim.process(flood(conn))
        done = [conn.client_recv_cq.wait_for_count(lookups_per_conn)
                for _offload, conn in offloads]
        for event in done:
            if not event.triggered:
                yield event
        total = len(offloads) * lookups_per_conn
        return total / ((sim.now - start) / 1e9)

    return bed.run(run()) / 1e3


def scenario():
    results = {}
    results[("small", 1)] = _measure(64, 1, 150)
    results[("small", 2)] = _measure(64, 2, 150)
    results[("64KB", 1)] = _measure(65536, 1, 80)
    results[("64KB", 2)] = _measure(65536, 2, 80)
    return {f"{io}/{ports}p": rate
            for (io, ports), rate in results.items()}


def bench_table4(benchmark):
    results = run_once(benchmark, scenario)
    rows = []
    for (io, ports), reference in PAPER_KOPS.items():
        measured = results[f"{io}/{ports}p"]
        rows.append((io, f"{ports} port(s)", f"{measured:.0f}",
                     f"{reference}"))
    print_comparison("Table 4 — hash lookup throughput",
                     ["IO size", "config", "measured K/s", "paper K/s"],
                     rows)

    for (io, ports), reference in PAPER_KOPS.items():
        measured = results[f"{io}/{ports}p"]
        assert within_factor(measured, reference, 1.5), \
            f"{io}/{ports}p: {measured:.0f}K vs {reference}K"
    # Bottleneck structure: small IO scales with ports (PU/engine
    # bound); 64KB barely does (wire then PCIe bound).
    assert results["small/2p"] > 1.6 * results["small/1p"]
    assert results["64KB/2p"] < 1.35 * results["64KB/1p"]
