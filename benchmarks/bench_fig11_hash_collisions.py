"""Figure 11: get latency under hash collisions (key in 2nd bucket).

Paper: RedN-Parallel probes both buckets on different WQs/PUs and keeps
the no-collision latency; RedN-Seq probes buckets one-by-one and pays
>= ~3 us extra. Parallelism costs only extra WQs, never wasted data
movement — the losing bucket's response WR stays a NOOP.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import Testbed, print_comparison, run_once

from repro.apps import MemcachedServer
from repro.bench.stats import summarize
from repro.redn.offload import OffloadClient

VALUE_SIZES = (64, 4096, 65536)
SAMPLES = 10
KEY = 0x55


def measure(value_size: int, parallel: bool,
            force_bucket: int = 1) -> float:
    bed = Testbed(num_clients=1, server_memory=512 * 1024 * 1024)
    store = MemcachedServer(bed.server, slab_size=128 * 1024 * 1024)
    store.set(KEY, b"v" * value_size, force_bucket=force_bucket)
    offload, conn = store.attach_get_offload(
        bed.clients[0].nic, bed.client_pd(0), parallel=parallel,
        max_instances=SAMPLES + 2)
    offload.post_instances(SAMPLES + 1)
    client = OffloadClient(conn, bed.client_verbs(0))

    def run():
        latencies = []
        for index in range(SAMPLES + 1):
            result = yield from client.call(offload.payload_for(KEY),
                                            timeout_ns=30_000_000)
            assert result.ok
            if index:
                latencies.append(result.latency_ns)
        return latencies

    return summarize(bed.run(run()))["avg"] / 1000.0


def scenario():
    results = {}
    for size in VALUE_SIZES:
        results[f"seq/{size}"] = measure(size, parallel=False)
        results[f"par/{size}"] = measure(size, parallel=True)
        # Reference: the same key with no collision (first bucket).
        results[f"nocoll/{size}"] = measure(size, parallel=False,
                                            force_bucket=0)
    return results


def bench_fig11(benchmark):
    results = run_once(benchmark, scenario)
    rows = [(f"{size}B",
             f"{results[f'seq/{size}']:.2f}",
             f"{results[f'par/{size}']:.2f}",
             f"{results[f'nocoll/{size}']:.2f}")
            for size in VALUE_SIZES]
    print_comparison(
        "Fig 11 — get latency with collisions (us)",
        ["value", "RedN-Seq", "RedN-Parallel", "no-collision ref"],
        rows)

    for size in VALUE_SIZES:
        seq = results[f"seq/{size}"]
        par = results[f"par/{size}"]
        ref = results[f"nocoll/{size}"]
        # Parallel hides the second probe almost entirely...
        assert par < seq
        assert par <= ref * 1.35
        # ...while sequential pays for probing buckets one-by-one
        # (paper: at least ~3 us extra).
        assert seq - ref >= 1_500 / 1000.0, (seq, ref)
