"""Sharded cluster simulator speed: the ``cluster_simspeed`` workload.

Like ``bench_simspeed``, this measures the simulator itself (host-CPU
events/second), not the simulated system. The scenario is 16 testbeds
on a :class:`repro.sim.sharded.ShardedSimulation` exchanging closed-loop
RPCs over 1 µs inter-bed links; it is driven once by the conservative
sharded synchronizer and once by the one-timestamp-window serial merge.
The two drives must be bit-identical — same RPC latencies, same
frontier, same per-bed kernel event counts — and the sharded drive must
actually be faster: the speedup is the point of the sharded core.

Marked ``bench`` so the wall-clock-sensitive run can be split from the
deterministic tier-1 suite: ``pytest -m "not bench"`` skips it.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from _common import print_comparison, run_once

from perf_smoke import (CLUSTER_SPEEDUP_FLOOR, CLUSTER_WORKLOAD,
                        run_speedup_workload)

pytestmark = pytest.mark.bench


def bench_cluster_simspeed(benchmark):
    def scenario():
        measured = run_speedup_workload(CLUSTER_WORKLOAD, reps=3)
        return {
            "events": measured["events"],
            "events_per_sec": measured["events_per_sec"],
            "serial_events_per_sec": measured["serial_events_per_sec"],
            "speedup": measured["speedup"],
            "requests": measured["fingerprint"]["requests"],
            "frontier_ns": measured["fingerprint"]["frontier_ns"],
        }

    result = run_once(benchmark, scenario)
    print_comparison(
        "Sharded cluster — kernel events per CPU-second",
        ["drive", "events/s", "events", "speedup"],
        [("sharded", f"{result['events_per_sec']:,d}",
          result["events"], f"{result['speedup']:.2f}x"),
         ("serial merge", f"{result['serial_events_per_sec']:,d}",
          result["events"], "1.00x")])
    # run_speedup_workload has already asserted bit-identity between the
    # sharded and serial drives; here we hold the perf claim itself.
    assert result["events_per_sec"] > 0
    assert result["speedup"] >= CLUSTER_SPEEDUP_FLOOR
