"""Shared infrastructure for the per-table/per-figure benchmarks.

Every benchmark follows the same pattern:

1. build a simulated scenario on the paper's testbed,
2. measure the *simulated* metric (latency in simulated microseconds,
   throughput in simulated ops/s) — pytest-benchmark's wall-clock
   numbers only show how fast the simulator runs, the reproduced
   numbers are printed and attached as ``extra_info``,
3. assert the paper's qualitative shape (who wins, rough factors).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench import Testbed as _BaseTestbed
from repro.bench import render_table

__all__ = ["run_once", "print_comparison", "Testbed", "within_factor",
           "set_trace_output", "set_breakdown_output", "flush_trace",
           "set_journal_output", "set_history_output", "flush_history",
           "set_telemetry_output", "mark_request"]

# -- optional tracing (pytest --trace OUT.json / REPRO_TRACE=OUT.json) ----

#: Where to write the merged Chrome trace, or None for tracing off.
TRACE_PATH: Optional[str] = os.environ.get("REPRO_TRACE") or None
#: Where to write the per-phase latency breakdown JSON, or None.
BREAKDOWN_PATH: Optional[str] = \
    os.environ.get("REPRO_BREAKDOWN") or None
#: Where to write the merged flight-recorder journal, or None.
JOURNAL_PATH: Optional[str] = os.environ.get("REPRO_JOURNAL") or None
#: Where to write the merged fleet telemetry JSONL stream, or None
#: (pytest ``--telemetry OUT.jsonl`` / env ``REPRO_TELEMETRY``).
TELEMETRY_PATH: Optional[str] = os.environ.get("REPRO_TELEMETRY") or None
#: Where to append this run's results (tools/bench_history.py format).
HISTORY_PATH: Optional[str] = None
_tracers: List = []
_recorders: List = []
_fleet = None  # session-wide repro.obs.telemetry.FleetTelemetry
_history_samples: Dict[str, Dict] = {}


def set_trace_output(path: Optional[str]) -> None:
    """Enable tracing for every Testbed built after this call."""
    global TRACE_PATH
    TRACE_PATH = path


def set_breakdown_output(path: Optional[str]) -> None:
    """Enable critical-path breakdown output (implies tracing)."""
    global BREAKDOWN_PATH
    BREAKDOWN_PATH = path


def set_journal_output(path: Optional[str]) -> None:
    """Enable flight-recorder journaling for every Testbed built
    after this call (pytest ``--journal OUT.jsonl``)."""
    global JOURNAL_PATH
    JOURNAL_PATH = path


def set_telemetry_output(path: Optional[str]) -> None:
    """Enable windowed fleet telemetry for every Testbed built after
    this call (pytest ``--telemetry OUT.jsonl``)."""
    global TELEMETRY_PATH
    TELEMETRY_PATH = path


def set_history_output(path: Optional[str]) -> None:
    """Record this session's benchmark results into a history file
    (pytest ``--history [FILE]``, tools/bench_history.py format)."""
    global HISTORY_PATH
    HISTORY_PATH = path


def mark_request(bed, label: str, start_ns: int) -> None:
    """Mark [start_ns, now] as one profiled request window on ``bed``.

    No-op when the bed carries no tracer, so benchmarks call it
    unconditionally per sample.
    """
    tracer = getattr(bed, "tracer", None)
    if tracer is not None:
        tracer.request_span(label, start_ns)


def _write_breakdown(path: str) -> None:
    """Profile every bed's tracer and write one merged breakdown."""
    import json as _json
    from collections import Counter as _Counter

    from repro.obs import CritPathProfile, profile_tracer

    requests: List = []
    ops: _Counter = _Counter()
    totals = _Counter()
    for tracer in _tracers:
        profile = profile_tracer(tracer)
        requests.extend(profile.requests)
        counts = profile.counts
        ops.update(counts["ops"])
        for key in ("E", "WAIT", "ENABLE"):
            totals[key] += counts[key]
    merged = CritPathProfile(requests, {
        "E": totals["E"], "WAIT": totals["WAIT"],
        "ENABLE": totals["ENABLE"], "ops": dict(sorted(ops.items()))})
    with open(path, "w") as handle:
        _json.dump(merged.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\n[breakdown] wrote {len(requests)} request(s) to {path}")


def flush_trace() -> Optional[str]:
    """Write all pending outputs (trace, breakdown, journal); returns
    the trace path written, if any."""
    global _tracers, _recorders
    written = None
    if _tracers:
        if BREAKDOWN_PATH:
            _write_breakdown(BREAKDOWN_PATH)
        if TRACE_PATH:
            from repro.obs import export_merged_chrome
            count = export_merged_chrome(_tracers, TRACE_PATH)
            print(f"\n[trace] wrote {count} events to {TRACE_PATH}")
            written = TRACE_PATH
        for tracer in _tracers:
            tracer.close()
        _tracers = []
    if _recorders:
        if JOURNAL_PATH:
            from repro.obs import export_merged_journal
            count = export_merged_journal(_recorders, JOURNAL_PATH)
            print(f"\n[journal] wrote {count} records to {JOURNAL_PATH}")
        for recorder in _recorders:
            recorder.close()
        _recorders = []
    global _fleet
    if _fleet is not None:
        records = _fleet.finalize()
        if TELEMETRY_PATH:
            with open(TELEMETRY_PATH, "w") as handle:
                handle.write(_fleet.to_jsonl())
            print(f"\n[telemetry] wrote {len(records)} window records "
                  f"to {TELEMETRY_PATH}")
        _fleet.close()
        _fleet = None
    return written


def flush_history() -> None:
    """Append the session's collected benchmark results to the
    history file, if ``--history`` was given."""
    global _history_samples
    if not HISTORY_PATH or not _history_samples:
        return
    import sys as _sys
    tools = str(Path(__file__).resolve().parent.parent / "tools")
    if tools not in _sys.path:
        _sys.path.insert(0, tools)
    from bench_history import append_entry
    entry = append_entry(HISTORY_PATH, figs=_history_samples)
    print(f"\n[history] recorded {entry['sha']} "
          f"({len(_history_samples)} benchmark(s)) in {HISTORY_PATH}")
    _history_samples = {}


class Testbed(_BaseTestbed):
    """The paper testbed, plus a per-bed tracer when --trace-out or
    --breakdown is on and a flight recorder when --journal is on."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.tracer = None
        if TRACE_PATH or BREAKDOWN_PATH:
            from repro.obs import Tracer
            self.tracer = Tracer(self.sim, name=f"bed{len(_tracers)}")
            self.tracer.attach_nic(self.server.nic)
            for client in self.clients:
                self.tracer.attach_nic(client.nic)
            _tracers.append(self.tracer)
        self.recorder = None
        if JOURNAL_PATH:
            from repro.obs import FlightRecorder
            self.recorder = FlightRecorder(
                self.sim, name=f"bed{len(_recorders)}")
            self.recorder.attach_nic(self.server.nic)
            for client in self.clients:
                self.recorder.attach_nic(client.nic)
            _recorders.append(self.recorder)
        self.telemetry = None
        if TELEMETRY_PATH:
            global _fleet
            if _fleet is None:
                from repro.obs import FleetTelemetry
                _fleet = FleetTelemetry()
            self.telemetry = _fleet.attach(
                self.sim, bed=f"bed{len(_fleet.collectors)}")


def run_once(benchmark, fn: Callable[[], Dict]) -> Dict:
    """Run the scenario exactly once under pytest-benchmark."""
    result_box = {}

    def wrapper():
        result_box["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    result = result_box["result"]
    for key, value in result.items():
        if isinstance(value, (int, float, str)):
            benchmark.extra_info[key] = value
    if HISTORY_PATH:
        _history_samples[benchmark.name] = {
            key: value for key, value in result.items()
            if isinstance(value, (int, float))}
    return result


def within_factor(measured: float, reference: float,
                  factor: float) -> bool:
    """True when measured is within [ref/factor, ref*factor]."""
    if reference <= 0 or measured <= 0:
        return False
    return reference / factor <= measured <= reference * factor


def print_comparison(title: str, headers: Sequence[str], rows) -> None:
    print(render_table(headers, rows, title=title))


def measure_flood_rate(bed, qps, make_wqe, ops_per_qp: int = 768,
                       wave: int = 256) -> float:
    """Aggregate verb rate (ops/s) for a deep flood across QPs.

    Each QP posts ``wave``-sized bursts with only the final WR
    signaled (ib_write_bw style) and re-posts when the wave drains.
    The rate is computed over the post-warmup window.
    """
    sim = bed.sim
    waves = max(1, ops_per_qp // wave)

    def flood(qp):
        for _ in range(waves):
            base = qp.send_wq.cq.count
            for index in range(wave):
                wqe = make_wqe(qp)
                wqe.flags |= 0x1 if index == wave - 1 else 0
                if index != wave - 1:
                    wqe.flags &= ~0x1
                qp.post_send(wqe)
            yield qp.send_wq.cq.wait_for_count(base + 1)

    def run():
        start = sim.now
        procs = [sim.process(flood(qp), name=f"flood{i}")
                 for i, qp in enumerate(qps)]
        for proc in procs:
            if not proc.triggered:
                yield proc
        elapsed = sim.now - start
        total = len(qps) * waves * wave
        return total / (elapsed / 1e9)

    return bed.run(run())
